package datagen

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"edc/internal/compress"
	"edc/internal/compress/gz"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{LinuxSrc(), FirefoxBin(), Media(), Enterprise()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty mixture should fail")
	}
	bad = Profile{Name: "bad", Mixture: []ClassWeight{{Class(99), 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown class should fail")
	}
	bad = Profile{Name: "bad", Mixture: []ClassWeight{{ClassText, -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative weight should fail")
	}
	bad = Profile{Name: "bad", Mixture: []ClassWeight{{ClassText, 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero total weight should fail")
	}
}

func TestDeterministic(t *testing.T) {
	g1 := New(LinuxSrc(), 42)
	g2 := New(LinuxSrc(), 42)
	a := g1.Block(1<<20, 8192, 0)
	b := g2.Block(1<<20, 8192, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, offset, version) produced different content")
	}
	c := g1.Block(1<<20, 8192, 1)
	if bytes.Equal(a, c) {
		t.Fatal("different versions should produce different content")
	}
	d := New(LinuxSrc(), 43).Block(1<<20, 8192, 0)
	if bytes.Equal(a, d) {
		t.Fatal("different seeds should produce different content")
	}
}

func TestBlockSize(t *testing.T) {
	g := New(Enterprise(), 1)
	for _, n := range []int{1, 511, 4096, 100000} {
		if got := g.Block(0, n, 0); len(got) != n {
			t.Fatalf("Block(%d) returned %d bytes", n, len(got))
		}
	}
	if got := g.Block(12345, 0, 0); len(got) != 0 {
		t.Fatalf("zero-size block returned %d bytes", len(got))
	}
}

func TestBlockSpansRegions(t *testing.T) {
	g := New(Enterprise(), 2)
	// A block crossing a classGrain boundary must equal the concatenation
	// of the two aligned halves.
	off := int64(classGrain - 2048)
	whole := g.Block(off, 4096, 0)
	left := g.Block(off, 2048, 0)
	if !bytes.Equal(whole[:2048], left) {
		t.Fatal("cross-region block not consistent with prefix read")
	}
}

func TestClassAtStable(t *testing.T) {
	g := New(Enterprise(), 3)
	for off := int64(0); off < classGrain*10; off += 4096 {
		if g.ClassAt(off) != g.ClassAt(off) {
			t.Fatal("ClassAt not deterministic")
		}
		// Same region, same class.
		if g.ClassAt(off) != g.ClassAt(off-off%classGrain) {
			t.Fatal("class differs within one region")
		}
	}
}

func TestClassMixtureProportions(t *testing.T) {
	g := New(Media(), 4)
	media := 0
	total := 2000
	for i := 0; i < total; i++ {
		if g.ClassAt(int64(i)*classGrain) == ClassMedia {
			media++
		}
	}
	frac := float64(media) / float64(total)
	if frac < 0.85 || frac > 0.99 {
		t.Fatalf("media fraction = %.3f; want ~0.92", frac)
	}
}

// compressibility measures the gz ratio over a 1 MiB fill.
func compressibility(t *testing.T, p Profile, seed int64) float64 {
	t.Helper()
	g := New(p, seed)
	data := g.Block(0, 1<<20, 0)
	c := gz.New()
	return compress.Ratio(len(data), len(c.Compress(data)))
}

func TestProfileCompressibilityOrdering(t *testing.T) {
	// The paper's Fig. 2 datasets: linux-src compresses better than
	// firefox-bin; media barely compresses.
	linux := compressibility(t, LinuxSrc(), 5)
	firefox := compressibility(t, FirefoxBin(), 5)
	media := compressibility(t, Media(), 5)
	if !(linux > firefox && firefox > media) {
		t.Fatalf("ordering violated: linux %.2f, firefox %.2f, media %.2f", linux, firefox, media)
	}
	if media > 1.35 {
		t.Fatalf("media ratio %.2f; want near-incompressible", media)
	}
	if linux < 2.0 {
		t.Fatalf("linux-src ratio %.2f; want > 2", linux)
	}
}

func TestEnterpriseHasIncompressibleChunks(t *testing.T) {
	// ~30% of 64K regions should be incompressible (media class).
	g := New(Enterprise(), 6)
	incompressible := 0
	total := 500
	gzc := gz.New()
	for i := 0; i < total; i++ {
		chunk := g.Block(int64(i)*classGrain, 16384, 0)
		r := compress.Ratio(len(chunk), len(gzc.Compress(chunk)))
		if r < 4.0/3.0 { // the paper's 75% write-through threshold
			incompressible++
		}
	}
	frac := float64(incompressible) / float64(total)
	if frac < 0.15 || frac > 0.5 {
		t.Fatalf("incompressible fraction = %.3f; want ~0.3", frac)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassZero: "zero", ClassText: "text", ClassCode: "code",
		ClassBinary: "binary", ClassMedia: "media",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q; want %q", c, c.String(), want)
		}
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should still print")
	}
}

func BenchmarkBlock4K(b *testing.B) {
	g := New(Enterprise(), 7)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		_ = g.Block(int64(i)*4096, 4096, 0)
	}
}

// TestAppendBlockMatchesBlock pins the zero-alloc path to the allocating
// one byte-for-byte across classes and region boundaries.
func TestAppendBlockMatchesBlock(t *testing.T) {
	g := New(Enterprise(), 3)
	var buf []byte
	for _, off := range []int64{0, 4096, classGrain - 100, 5 * classGrain, 1 << 30} {
		for _, size := range []int{512, 4096, 3 * classGrain / 2} {
			want := g.Block(off, size, 2)
			buf = g.AppendBlock(buf[:0], off, size, 2)
			if !bytes.Equal(buf, want) {
				t.Fatalf("AppendBlock(off=%d size=%d) differs from Block", off, size)
			}
			// A non-empty prefix must be preserved.
			pre := append([]byte(nil), 0xaa, 0xbb)
			got := g.AppendBlock(pre, off, size, 2)
			if got[0] != 0xaa || got[1] != 0xbb || !bytes.Equal(got[2:], want) {
				t.Fatalf("AppendBlock corrupted prefix (off=%d size=%d)", off, size)
			}
		}
	}
}

// TestAppendBlockSteadyStateAllocs guards the generator hot path: with a
// recycled destination buffer, steady-state generation must not allocate
// (the sync.Pool may rarely miss under GC pressure, hence the small
// tolerance rather than exactly zero).
func TestAppendBlockSteadyStateAllocs(t *testing.T) {
	g := New(Enterprise(), 7)
	buf := make([]byte, 0, 64<<10)
	off := int64(0)
	// Warm the scratch pool.
	buf = g.AppendBlock(buf[:0], off, 4096, 0)
	avg := testing.AllocsPerRun(200, func() {
		buf = g.AppendBlock(buf[:0], off, 4096, 0)
		off += 4096
	})
	if avg > 0.5 {
		t.Fatalf("AppendBlock allocates %.2f allocs/op in steady state; want ~0", avg)
	}
}

// BenchmarkGeneratorBlock measures both generator paths; the Append rows
// should report 0 allocs/op.
func BenchmarkGeneratorBlock(b *testing.B) {
	for _, sz := range []int{4096, 64 << 10} {
		sz := sz
		b.Run(fmt.Sprintf("Block/%dB", sz), func(b *testing.B) {
			g := New(Enterprise(), 7)
			b.ReportAllocs()
			b.SetBytes(int64(sz))
			for i := 0; i < b.N; i++ {
				_ = g.Block(int64(i)*int64(sz), sz, 0)
			}
		})
		b.Run(fmt.Sprintf("AppendBlock/%dB", sz), func(b *testing.B) {
			g := New(Enterprise(), 7)
			buf := make([]byte, 0, sz)
			b.ReportAllocs()
			b.SetBytes(int64(sz))
			for i := 0; i < b.N; i++ {
				buf = g.AppendBlock(buf[:0], int64(i)*int64(sz), sz, 0)
			}
		})
	}
}

// TestAppendCodeMatchesSprintf pins the hand-rolled template expansion
// to the fmt.Sprintf reference it replaced: same bytes, same RNG draws.
func TestAppendCodeMatchesSprintf(t *testing.T) {
	const n = 8192
	got := appendCode(nil, rand.New(rand.NewSource(9)), n)
	rng := rand.New(rand.NewSource(9))
	var ref []byte
	for len(ref) < n {
		tpl := codeTemplates[rng.Intn(len(codeTemplates))]
		var args []interface{}
		for i := 0; i+1 < len(tpl); i++ {
			if tpl[i] == '%' && tpl[i+1] == 's' {
				args = append(args, codeIdents[rng.Intn(len(codeIdents))])
			}
		}
		ref = append(ref, fmt.Sprintf(tpl, args...)...)
	}
	ref = ref[:n]
	if !bytes.Equal(got, ref) {
		t.Fatal("appendCode diverged from the fmt.Sprintf reference")
	}
}

// DupRatio 0 must reproduce the historical generator byte-for-byte:
// the knob is purely additive.
func TestDupZeroUnchanged(t *testing.T) {
	stock := New(Enterprise(), 9)
	dup0 := New(Enterprise().WithDup(0, 0), 9)
	for _, off := range []int64{0, 8192, 1 << 20, classGrain - 2048} {
		for _, ver := range []uint32{0, 1, 7} {
			if !bytes.Equal(stock.Block(off, 8192, ver), dup0.Block(off, 8192, ver)) {
				t.Fatalf("DupRatio=0 diverged at off=%d ver=%d", off, ver)
			}
		}
	}
}

// With every region cloned from a single-clone pool, all regions carry
// identical bytes at the same intra-region alignment, the same class,
// and overwrites rewrite the same content — the exact duplicates a
// content-addressed dedup layer collapses.
func TestCloneRegionsByteIdentical(t *testing.T) {
	g := New(Enterprise().WithDup(1, 1), 5)
	a := g.Block(3*classGrain+4096, 8192, 0)
	b := g.Block(11*classGrain+4096, 8192, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("replicas of the same clone differ across regions/versions")
	}
	if g.ClassAt(3*classGrain) != g.ClassAt(11*classGrain) {
		t.Fatal("replicas of the same clone differ in class")
	}
	if bytes.Equal(a, g.Block(3*classGrain, 8192, 0)) {
		t.Fatal("different intra-region alignments should differ")
	}
}

// A partial ratio yields both kinds of regions: clones (version-
// independent content) and unique regions (version-dependent), with
// clone selection stable across generator instances.
func TestCloneSelectionStable(t *testing.T) {
	mk := func() *Generator { return New(Enterprise().WithDup(0.5, 4), 13) }
	g, g2 := mk(), mk()
	var clones, unique int
	for r := int64(0); r < 64; r++ {
		off := r * classGrain
		v0 := g.Block(off, 4096, 0)
		if !bytes.Equal(v0, g2.Block(off, 4096, 0)) {
			t.Fatalf("region %d: same seed produced different content", r)
		}
		if bytes.Equal(v0, g.Block(off, 4096, 1)) {
			clones++
		} else {
			unique++
		}
	}
	if clones == 0 || unique == 0 {
		t.Fatalf("ratio 0.5 over 64 regions: %d clones, %d unique; want both > 0", clones, unique)
	}
}
