// Package datagen generates synthetic payloads with controlled,
// realistic compressibility — the role SDGen [Gracia-Tinedo et al.,
// FAST'15] plays in the paper's evaluation. Block traces carry no data,
// so write contents are synthesized per volume offset from a dataset
// profile: a mixture of content classes (text, source code, structured
// binary, already-compressed media, zero pages) whose proportions set the
// dataset's compressibility distribution, including the ~30 % of chunks
// that do not compress at all (El-Shimi et al., USENIX ATC'12).
//
// Generation is deterministic in (profile, seed, offset, version), so a
// trace replay always sees the same bytes for the same block.
package datagen

import (
	"fmt"
	"math/rand"
	"sync"
)

// Class identifies one content family.
type Class int

// Content classes, ordered roughly by decreasing compressibility.
const (
	ClassZero   Class = iota // zero-filled pages (metadata slack)
	ClassText                // natural-language text
	ClassCode                // source code
	ClassBinary              // structured binary records
	ClassMedia               // already-compressed (incompressible)
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassZero:
		return "zero"
	case ClassText:
		return "text"
	case ClassCode:
		return "code"
	case ClassBinary:
		return "binary"
	case ClassMedia:
		return "media"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassWeight is one mixture component.
type ClassWeight struct {
	Class  Class
	Weight float64
}

// Profile is a dataset model: a named mixture of content classes, plus
// an optional duplication knob controlling how much of the volume is
// populated from a shared pool of clone regions.
type Profile struct {
	Name    string
	Mixture []ClassWeight

	// DupRatio is the fraction of content regions (classGrain-sized)
	// whose bytes are drawn from a shared clone pool instead of being
	// unique to the region. Clone content ignores both the region number
	// and the overwrite version, so two writes covering clone regions of
	// the same clone at the same intra-region alignment are
	// byte-identical — the duplicates a content-addressed dedup layer
	// collapses. 0 (the default) reproduces the historical generator
	// byte-for-byte.
	DupRatio float64

	// DupUniverse is the number of distinct clones in the pool (default
	// 64 when DupRatio > 0). Smaller universes mean heavier duplication.
	DupUniverse int
}

// WithDup returns a copy of p with the duplication knob set; a
// convenience for tooling that layers duplicates over a stock profile.
func (p Profile) WithDup(ratio float64, universe int) Profile {
	p.DupRatio = ratio
	p.DupUniverse = universe
	return p
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if len(p.Mixture) == 0 {
		return fmt.Errorf("datagen %s: empty mixture", p.Name)
	}
	if p.DupRatio < 0 || p.DupRatio > 1 {
		return fmt.Errorf("datagen %s: dup ratio %v outside [0,1]", p.Name, p.DupRatio)
	}
	if p.DupUniverse < 0 {
		return fmt.Errorf("datagen %s: negative dup universe", p.Name)
	}
	sum := 0.0
	for _, cw := range p.Mixture {
		if cw.Class < 0 || cw.Class >= numClasses {
			return fmt.Errorf("datagen %s: unknown class %d", p.Name, cw.Class)
		}
		if cw.Weight < 0 {
			return fmt.Errorf("datagen %s: negative weight", p.Name)
		}
		sum += cw.Weight
	}
	if sum <= 0 {
		return fmt.Errorf("datagen %s: zero total weight", p.Name)
	}
	return nil
}

// LinuxSrc models a source tree (the paper's "Linux source files"
// dataset in Fig. 2): highly compressible.
func LinuxSrc() Profile {
	return Profile{Name: "linux-src", Mixture: []ClassWeight{
		{ClassCode, 0.50}, {ClassText, 0.30}, {ClassBinary, 0.12},
		{ClassZero, 0.05}, {ClassMedia, 0.03},
	}}
}

// FirefoxBin models an application install tree (the paper's "Mozilla
// Firefox files" dataset): moderately compressible.
func FirefoxBin() Profile {
	return Profile{Name: "firefox-bin", Mixture: []ClassWeight{
		{ClassBinary, 0.45}, {ClassCode, 0.15}, {ClassText, 0.12},
		{ClassMedia, 0.25}, {ClassZero, 0.03},
	}}
}

// Media models photo/video/audio volumes: essentially incompressible.
func Media() Profile {
	return Profile{Name: "media", Mixture: []ClassWeight{
		{ClassMedia, 0.92}, {ClassBinary, 0.06}, {ClassZero, 0.02},
	}}
}

// Enterprise models a general-purpose file-server volume with the
// published skew: roughly 30 % of chunks incompressible.
func Enterprise() Profile {
	return Profile{Name: "enterprise", Mixture: []ClassWeight{
		{ClassText, 0.25}, {ClassCode, 0.18}, {ClassBinary, 0.22},
		{ClassMedia, 0.30}, {ClassZero, 0.05},
	}}
}

// Generator produces deterministic content for volume offsets. It is
// safe for concurrent use: per-call scratch (the reseedable RNG and the
// binary-class match pool) lives in an internal sync.Pool, so steady-
// state generation through AppendBlock allocates nothing.
type Generator struct {
	p       Profile
	seed    int64
	cum     []float64
	cumSum  float64
	scratch sync.Pool // of *genScratch

	// dupRatio/dupUniverse are the resolved duplication knob (universe
	// defaulted when the profile leaves it zero).
	dupRatio    float64
	dupUniverse uint64
}

// genScratch is the reusable per-call state. Reseeding one rand.Rand
// per region replaces the dominant allocation of the original
// implementation (rand.NewSource builds a ~5 KiB state table per call).
type genScratch struct {
	rng  *rand.Rand
	pool [256]byte // appendBinary's per-region match pool
}

// New returns a generator for profile p. It panics on an invalid
// profile; validate first if the profile is user-supplied.
func New(p Profile, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{p: p, seed: seed, dupRatio: p.DupRatio, dupUniverse: uint64(p.DupUniverse)}
	if g.dupUniverse == 0 {
		g.dupUniverse = 64
	}
	g.scratch.New = func() interface{} {
		return &genScratch{rng: rand.New(rand.NewSource(0))}
	}
	for _, cw := range p.Mixture {
		g.cumSum += cw.Weight
		g.cum = append(g.cum, g.cumSum)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// classGrain is the region size sharing one content class: 64 KiB, so a
// file-sized extent has a consistent type.
const classGrain = 64 << 10

// mix64 is SplitMix64, used to derive per-region seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dupSalt decorrelates the clone-selection hash from the class hash.
const dupSalt = 0xd1b54a32d192ed03

// cloneID reports whether region is a clone region and, if so, which of
// the profile's DupUniverse clones it replicates. Clone selection is a
// pure function of (seed, region), so the same region is always the
// same clone across versions and runs.
func (g *Generator) cloneID(region int64) (uint64, bool) {
	if g.dupRatio <= 0 {
		return 0, false
	}
	h := mix64(uint64(region) ^ uint64(g.seed)*dupSalt)
	if float64(h>>11)/float64(1<<53) >= g.dupRatio {
		return 0, false
	}
	return mix64(h) % g.dupUniverse, true
}

// classOf maps a region hash onto the mixture.
func (g *Generator) classOf(h uint64) Class {
	v := float64(h>>11) / float64(1<<53) * g.cumSum
	for i, c := range g.cum {
		if v <= c {
			return g.p.Mixture[i].Class
		}
	}
	return g.p.Mixture[len(g.p.Mixture)-1].Class
}

// ClassAt returns the content class of the region containing offset.
// Clone regions take their class from the clone identity, not the
// region, so every replica of a clone has the same class (and therefore
// the same bytes).
func (g *Generator) ClassAt(offset int64) Class {
	region := offset / classGrain
	if id, ok := g.cloneID(region); ok {
		return g.classOf(mix64(id*0x9e3779b97f4a7c15 ^ uint64(g.seed) ^ dupSalt))
	}
	return g.classOf(mix64(uint64(region) ^ uint64(g.seed)*0x9e3779b97f4a7c15))
}

// Block returns size bytes of content for the given volume offset.
// version distinguishes successive overwrites of the same block.
func (g *Generator) Block(offset int64, size int, version uint32) []byte {
	return g.AppendBlock(make([]byte, 0, size), offset, size, version)
}

// AppendBlock appends size bytes of content for the given volume offset
// to dst and returns the extended slice. Output is byte-identical to
// Block; callers on hot paths pass a recycled buffer (as buf[:0]) so
// generation is allocation-free in steady state.
func (g *Generator) AppendBlock(dst []byte, offset int64, size int, version uint32) []byte {
	st := g.scratch.Get().(*genScratch)
	start := len(dst)
	for len(dst)-start < size {
		done := len(dst) - start
		pos := offset + int64(done)
		region := pos / classGrain
		// Bytes remaining in this region.
		n := int(classGrain - pos%classGrain)
		if n > size-done {
			n = size - done
		}
		cls := g.ClassAt(pos)
		var sub uint64
		if id, ok := g.cloneID(region); ok {
			// Clone content is independent of region AND version: every
			// replica of a clone yields identical bytes, and overwriting
			// one rewrites the same bytes.
			sub = mix64(id*0x2545f4914f6cdd1d ^ uint64(g.seed) ^ uint64(pos%classGrain)<<1)
		} else {
			sub = mix64(uint64(region)*0x2545f4914f6cdd1d ^ uint64(g.seed) ^ uint64(version)<<32 ^ uint64(pos%classGrain)<<1)
		}
		dst = appendContent(dst, cls, n, int64(sub), st)
	}
	g.scratch.Put(st)
	return dst
}

// zeroChunk is a read-only source for zero fills.
var zeroChunk [4096]byte

// appendZeros appends n zero bytes without a temporary buffer.
func appendZeros(dst []byte, n int) []byte {
	for n > 0 {
		k := n
		if k > len(zeroChunk) {
			k = len(zeroChunk)
		}
		dst = append(dst, zeroChunk[:k]...)
		n -= k
	}
	return dst
}

// appendContent appends n bytes of class cls content seeded by seed.
// The reseeded scratch RNG yields exactly the stream a fresh
// rand.New(rand.NewSource(seed)) would.
func appendContent(dst []byte, cls Class, n int, seed int64, st *genScratch) []byte {
	rng := st.rng
	rng.Seed(seed)
	switch cls {
	case ClassZero:
		return appendZeros(dst, n)
	case ClassText:
		return appendText(dst, rng, n)
	case ClassCode:
		return appendCode(dst, rng, n)
	case ClassBinary:
		return appendBinary(dst, rng, n, st)
	case ClassMedia:
		// Fill the tail in place instead of staging through a temp
		// buffer (the stream read is identical).
		dst = appendZeros(dst, n)
		rng.Read(dst[len(dst)-n:])
		return dst
	default:
		panic(fmt.Sprintf("datagen: unknown class %d", cls))
	}
}

var textWords = []string{
	"storage", "system", "flash", "data", "compression", "elastic",
	"performance", "space", "efficiency", "request", "response", "write",
	"read", "block", "device", "queue", "latency", "throughput", "the",
	"and", "with", "for", "that", "this", "from", "into", "over",
	"workload", "intensity", "idle", "burst", "period", "algorithm",
}

func appendText(dst []byte, rng *rand.Rand, n int) []byte {
	start := len(dst)
	for len(dst)-start < n {
		dst = append(dst, textWords[rng.Intn(len(textWords))]...)
		switch rng.Intn(16) {
		case 0:
			dst = append(dst, ".\n"...)
		case 1:
			dst = append(dst, ", "...)
		default:
			dst = append(dst, ' ')
		}
	}
	return dst[:start+n]
}

var codeIdents = []string{
	"req", "dev", "buf", "err", "ctx", "cfg", "size", "offset", "page",
	"block", "queue", "state", "stats", "count", "index", "level",
}

var codeTemplates = []string{
	"func %s(%s int) error {\n",
	"\tif %s != nil {\n\t\treturn %s\n\t}\n",
	"\tfor %s := 0; %s < %s; %s++ {\n",
	"\t\t%s += %s\n\t}\n",
	"\treturn nil\n}\n\n",
	"\t%s := make([]byte, %s)\n",
	"// %s computes the %s of the %s.\n",
	"\tswitch %s {\n\tcase %s:\n\t\tbreak\n\t}\n",
}

// appendCode expands a template, substituting a random identifier for
// each %s verb in place (the templates contain no other verbs). This is
// exactly fmt.Sprintf's output without its boxing and scratch
// allocations, and the identifiers are drawn in the same RNG order.
func appendCode(dst []byte, rng *rand.Rand, n int) []byte {
	start := len(dst)
	for len(dst)-start < n {
		tpl := codeTemplates[rng.Intn(len(codeTemplates))]
		for i := 0; i < len(tpl); {
			if tpl[i] == '%' && i+1 < len(tpl) && tpl[i+1] == 's' {
				dst = append(dst, codeIdents[rng.Intn(len(codeIdents))]...)
				i += 2
				continue
			}
			dst = append(dst, tpl[i])
			i++
		}
	}
	return dst[:start+n]
}

// appendBinary emits 64-byte records: a 16-byte random key plus 48 bytes
// drawn from a small per-region pool, giving LZ matches across records
// (ratio ~1.5–2.5 under gz, like serialized application state).
func appendBinary(dst []byte, rng *rand.Rand, n int, st *genScratch) []byte {
	start := len(dst)
	pool := st.pool[:]
	rng.Read(pool)
	for len(dst)-start < n {
		var rec [64]byte
		rng.Read(rec[:16])
		for i := 16; i < 64; i += 8 {
			off := rng.Intn(len(pool) - 8)
			copy(rec[i:i+8], pool[off:off+8])
		}
		dst = append(dst, rec[:]...)
	}
	return dst[:start+n]
}
