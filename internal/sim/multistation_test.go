package sim

import (
	"testing"
	"time"
)

func TestMultiStationParallelism(t *testing.T) {
	e := NewEngine()
	s := NewMultiStation(e, "cpu", 2)
	var completions []time.Duration
	e.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			s.Submit(Job{Service: 10 * time.Millisecond, Done: func(_, end time.Duration) {
				completions = append(completions, end)
			}})
		}
	})
	e.Run()
	// Two servers: pairs complete at 10ms and 20ms.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 20 * time.Millisecond}
	if len(completions) != 4 {
		t.Fatalf("completions = %v", completions)
	}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("completion %d = %v; want %v", i, completions[i], w)
		}
	}
	st := s.Stats()
	if st.Jobs != 4 || st.BusyTime != 40*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiStationSingleWorkerMatchesStation(t *testing.T) {
	run := func(srv Server, e *Engine) []time.Duration {
		var out []time.Duration
		e.Schedule(0, func() {
			for i := 0; i < 3; i++ {
				d := time.Duration(i+1) * time.Millisecond
				srv.Submit(Job{Service: d, Done: func(_, end time.Duration) {
					out = append(out, end)
				}})
			}
		})
		e.Run()
		return out
	}
	e1 := NewEngine()
	a := run(NewStation(e1, "a"), e1)
	e2 := NewEngine()
	b := run(NewMultiStation(e2, "b", 1), e2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d: station %v vs multi %v", i, a[i], b[i])
		}
	}
}

func TestMultiStationMinimumWorkers(t *testing.T) {
	e := NewEngine()
	s := NewMultiStation(e, "cpu", 0)
	if s.Workers() != 1 {
		t.Fatalf("workers = %d; want clamped to 1", s.Workers())
	}
}

func TestMultiStationQueueAccounting(t *testing.T) {
	e := NewEngine()
	s := NewMultiStation(e, "cpu", 2)
	e.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			s.Submit(Job{Service: time.Millisecond})
		}
		if s.Busy() != 2 {
			t.Errorf("busy = %d; want 2", s.Busy())
		}
		if s.QueueLen() != 3 {
			t.Errorf("queue = %d; want 3", s.QueueLen())
		}
	})
	e.Run()
	st := s.Stats()
	if st.MaxQueue != 5 {
		t.Fatalf("maxQueue = %d", st.MaxQueue)
	}
	// Waits: jobs 3,4,5 wait 1ms, 1ms, 2ms... with 2 servers: jobs 0,1
	// start at 0; job 2,3 at 1ms; job 4 at 2ms -> total wait 1+1+2 = 4ms.
	if st.WaitTime != 4*time.Millisecond {
		t.Fatalf("wait = %v", st.WaitTime)
	}
}

func TestMultiStationNegativeService(t *testing.T) {
	e := NewEngine()
	s := NewMultiStation(e, "cpu", 2)
	ran := false
	e.Schedule(0, func() {
		s.Submit(Job{Service: -time.Second, Done: func(_, _ time.Duration) { ran = true }})
	})
	e.Run()
	if !ran {
		t.Fatal("negative-service job never completed")
	}
}
