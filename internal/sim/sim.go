// Package sim is a small discrete-event simulation kernel: a virtual
// clock, an event heap, and single-server FIFO stations. The EDC replay
// engine models the host as a tandem of stations — a CPU station where
// (de)compression executes and one device station per SSD — so queueing
// delay under bursty arrivals emerges naturally, which is the mechanism
// behind the paper's Fig. 10 (heavy codecs inflate the I/O queue).
package sim

import (
	"fmt"
	"time"
)

// Engine is a discrete-event simulator over virtual time. The zero value
// is not usable; call NewEngine.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    int64
	ran    int64
	hk     int // housekeeping events currently in the heap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

type event struct {
	at  time.Duration
	pri int8  // class tie-break: priority events run before plain ones
	seq int64 // FIFO tie-break for simultaneous same-class events
	fn  func()
}

// before is the event total order: time, then class, then FIFO sequence.
// seq is unique per engine, so the order has no ties and the pop
// sequence is independent of the heap's internal shape.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled 4-ary min-heap over a plain event slice.
// Compared with container/heap it avoids interface boxing on every
// Push/Pop (which allocated one escape per scheduled event) and halves
// the sift depth; the backing array is retained across pops, so a
// steady-state Schedule/Step cycle allocates nothing once the heap has
// reached its high-water mark.
type eventHeap []event

// push inserts ev, sifting it up toward the root at index 0.
func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// pop removes and returns the minimum event (the root).
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the closure reference so the GC can reclaim it
	s = s[:n]
	*h = s
	// Sift the displaced element down: pick the smallest of up to four
	// children, swap while it precedes the parent.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for k := c + 1; k < end; k++ {
			if s[k].before(&s[min]) {
				min = k
			}
		}
		if !s[min].before(&s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at virtual time `at`. Scheduling in the past panics:
// it indicates a logic error in the caller.
func (e *Engine) Schedule(at time.Duration, fn func()) {
	e.schedule(at, 0, fn)
}

// SchedulePriority runs fn at virtual time `at`, ahead of every plain
// event scheduled for the same instant; among priority events FIFO
// order applies. Trace replay schedules request arrivals in this class
// so an arrival streamed into the heap mid-run keeps exactly the
// ordering it had when every arrival was pre-scheduled before the first
// plain event existed.
func (e *Engine) SchedulePriority(at time.Duration, fn func()) {
	e.schedule(at, -1, fn)
}

func (e *Engine) schedule(at time.Duration, pri int8, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.events.push(event{at: at, pri: pri, seq: e.seq, fn: fn})
	e.seq++
}

// ScheduleAfter runs fn after delay d (d < 0 is clamped to 0).
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the next event, advancing the clock. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunPending executes events while non-housekeeping work remains,
// then stops — housekeeping-only timers stay queued. Live (serve-mode)
// loops use this between batches: a maintenance or checkpoint timer
// parked at now+interval must not fast-forward the clock past arrival
// stamps still to come, or every later operation is billed for skew
// the workload never offered. The parked timers fire in order when
// real events push the clock past their deadlines.
func (e *Engine) RunPending() {
	for e.PendingWork() > 0 && e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// ScheduleHousekeepingAfter runs fn after delay d like ScheduleAfter,
// but counts the event as housekeeping: PendingWork excludes it. Timer
// loops that re-arm only while the engine has other work (periodic
// checkpoints, background maintenance ticks) schedule themselves in
// this class — gating on Pending alone, two such loops would each see
// the other's timer and keep the heap alive forever.
func (e *Engine) ScheduleHousekeepingAfter(d time.Duration, fn func()) {
	e.hk++
	e.ScheduleAfter(d, func() {
		e.hk--
		fn()
	})
}

// PendingWork returns the number of scheduled events that are not
// housekeeping timers — the count a housekeeping loop consults to
// decide whether re-arming can keep the event loop from draining.
func (e *Engine) PendingWork() int { return len(e.events) - e.hk }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() int64 { return e.ran }

// Job is one unit of work for a Station.
type Job struct {
	// Service is the time the job occupies the server.
	Service time.Duration
	// Done, if non-nil, runs at completion with the job's service start
	// and end times.
	Done func(start, end time.Duration)
}

// Station is a single-server FIFO queue driven by an Engine.
type Station struct {
	eng  *Engine
	name string

	queue []Job
	busy  bool

	// statistics
	jobs      int64
	busyTime  time.Duration
	waitTime  time.Duration
	maxQueue  int
	lastStart time.Duration
	arrivals  []time.Duration // parallel to queue: arrival times of queued jobs
}

// NewStation returns an idle station attached to e.
func NewStation(e *Engine, name string) *Station {
	return &Station{eng: e, name: name}
}

// Name returns the station's name.
func (s *Station) Name() string { return s.name }

// Submit enqueues j at the current virtual time. If the server is idle
// the job starts immediately.
func (s *Station) Submit(j Job) {
	if j.Service < 0 {
		j.Service = 0
	}
	s.queue = append(s.queue, j)
	s.arrivals = append(s.arrivals, s.eng.Now())
	depth := len(s.queue)
	if s.busy {
		depth++ // include the job in service
	}
	if depth > s.maxQueue {
		s.maxQueue = depth
	}
	if !s.busy {
		s.startNext()
	}
}

func (s *Station) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	j := s.queue[0]
	arr := s.arrivals[0]
	s.queue = s.queue[1:]
	s.arrivals = s.arrivals[1:]
	s.busy = true
	start := s.eng.Now()
	s.lastStart = start
	s.waitTime += start - arr
	s.eng.ScheduleAfter(j.Service, func() {
		end := s.eng.Now()
		s.jobs++
		s.busyTime += end - start
		if j.Done != nil {
			j.Done(start, end)
		}
		s.startNext()
	})
}

// QueueLen returns the number of waiting jobs (excluding the one in
// service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports whether the server is occupied.
func (s *Station) Busy() bool { return s.busy }

// Stats summarizes the station's activity.
type Stats struct {
	Jobs     int64
	BusyTime time.Duration
	WaitTime time.Duration // total time jobs spent queued before service
	MaxQueue int
}

// Stats returns a snapshot of the station's counters.
func (s *Station) Stats() Stats {
	return Stats{Jobs: s.jobs, BusyTime: s.busyTime, WaitTime: s.waitTime, MaxQueue: s.maxQueue}
}

// Utilization returns busy time divided by elapsed virtual time (0 when
// the clock has not advanced).
func (s *Station) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.busyTime) / float64(s.eng.Now())
}
