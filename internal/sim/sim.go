// Package sim is a small discrete-event simulation kernel: a virtual
// clock, an event heap, and single-server FIFO stations. The EDC replay
// engine models the host as a tandem of stations — a CPU station where
// (de)compression executes and one device station per SSD — so queueing
// delay under bursty arrivals emerges naturally, which is the mechanism
// behind the paper's Fig. 10 (heavy codecs inflate the I/O queue).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event simulator over virtual time. The zero value
// is not usable; call NewEngine.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    int64
	ran    int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

type event struct {
	at  time.Duration
	pri int8  // class tie-break: priority events run before plain ones
	seq int64 // FIFO tie-break for simultaneous same-class events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at virtual time `at`. Scheduling in the past panics:
// it indicates a logic error in the caller.
func (e *Engine) Schedule(at time.Duration, fn func()) {
	e.schedule(at, 0, fn)
}

// SchedulePriority runs fn at virtual time `at`, ahead of every plain
// event scheduled for the same instant; among priority events FIFO
// order applies. Trace replay schedules request arrivals in this class
// so an arrival streamed into the heap mid-run keeps exactly the
// ordering it had when every arrival was pre-scheduled before the first
// plain event existed.
func (e *Engine) SchedulePriority(at time.Duration, fn func()) {
	e.schedule(at, -1, fn)
}

func (e *Engine) schedule(at time.Duration, pri int8, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	heap.Push(&e.events, event{at: at, pri: pri, seq: e.seq, fn: fn})
	e.seq++
}

// ScheduleAfter runs fn after delay d (d < 0 is clamped to 0).
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the next event, advancing the clock. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.events.Len() }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() int64 { return e.ran }

// Job is one unit of work for a Station.
type Job struct {
	// Service is the time the job occupies the server.
	Service time.Duration
	// Done, if non-nil, runs at completion with the job's service start
	// and end times.
	Done func(start, end time.Duration)
}

// Station is a single-server FIFO queue driven by an Engine.
type Station struct {
	eng  *Engine
	name string

	queue []Job
	busy  bool

	// statistics
	jobs      int64
	busyTime  time.Duration
	waitTime  time.Duration
	maxQueue  int
	lastStart time.Duration
	arrivals  []time.Duration // parallel to queue: arrival times of queued jobs
}

// NewStation returns an idle station attached to e.
func NewStation(e *Engine, name string) *Station {
	return &Station{eng: e, name: name}
}

// Name returns the station's name.
func (s *Station) Name() string { return s.name }

// Submit enqueues j at the current virtual time. If the server is idle
// the job starts immediately.
func (s *Station) Submit(j Job) {
	if j.Service < 0 {
		j.Service = 0
	}
	s.queue = append(s.queue, j)
	s.arrivals = append(s.arrivals, s.eng.Now())
	depth := len(s.queue)
	if s.busy {
		depth++ // include the job in service
	}
	if depth > s.maxQueue {
		s.maxQueue = depth
	}
	if !s.busy {
		s.startNext()
	}
}

func (s *Station) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	j := s.queue[0]
	arr := s.arrivals[0]
	s.queue = s.queue[1:]
	s.arrivals = s.arrivals[1:]
	s.busy = true
	start := s.eng.Now()
	s.lastStart = start
	s.waitTime += start - arr
	s.eng.ScheduleAfter(j.Service, func() {
		end := s.eng.Now()
		s.jobs++
		s.busyTime += end - start
		if j.Done != nil {
			j.Done(start, end)
		}
		s.startNext()
	})
}

// QueueLen returns the number of waiting jobs (excluding the one in
// service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports whether the server is occupied.
func (s *Station) Busy() bool { return s.busy }

// Stats summarizes the station's activity.
type Stats struct {
	Jobs     int64
	BusyTime time.Duration
	WaitTime time.Duration // total time jobs spent queued before service
	MaxQueue int
}

// Stats returns a snapshot of the station's counters.
func (s *Station) Stats() Stats {
	return Stats{Jobs: s.jobs, BusyTime: s.busyTime, WaitTime: s.waitTime, MaxQueue: s.maxQueue}
}

// Utilization returns busy time divided by elapsed virtual time (0 when
// the clock has not advanced).
func (s *Station) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.busyTime) / float64(s.eng.Now())
}
