package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v; want FIFO", order)
		}
	}
}

// TestPriorityEventsBeatPlainEvents pins the contract behind streamed
// trace replay: at one virtual time, every SchedulePriority event runs
// before any plain Schedule event regardless of insertion order, and
// within each class insertion order (seq) is preserved.
func TestPriorityEventsBeatPlainEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	at := time.Millisecond
	e.Schedule(at, func() { order = append(order, "plain0") })
	e.SchedulePriority(at, func() { order = append(order, "pri0") })
	e.Schedule(at, func() { order = append(order, "plain1") })
	e.SchedulePriority(at, func() { order = append(order, "pri1") })
	// An earlier plain event still runs first: priority only breaks ties
	// at equal times.
	e.Schedule(at/2, func() { order = append(order, "early") })
	e.Run()
	want := []string{"early", "pri0", "pri1", "plain0", "plain1"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scheduling in the past")
		}
	}()
	e.Schedule(time.Millisecond, func() {})
}

func TestScheduleAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.ScheduleAfter(-5*time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative delay should run at current time")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d; want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestCascadingEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			e.ScheduleAfter(time.Millisecond, recurse)
		}
	}
	e.ScheduleAfter(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Executed() != 101 {
		t.Fatalf("executed = %d", e.Executed())
	}
}

func TestStationFIFOAndTiming(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "dev")
	var completions []time.Duration
	submit := func(at, service time.Duration) {
		e.Schedule(at, func() {
			s.Submit(Job{Service: service, Done: func(_, end time.Duration) {
				completions = append(completions, end)
			}})
		})
	}
	// Three jobs arriving together at t=0 with 10ms service each.
	submit(0, 10*time.Millisecond)
	submit(0, 10*time.Millisecond)
	submit(0, 10*time.Millisecond)
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("completion %d = %v; want %v", i, completions[i], w)
		}
	}
	st := s.Stats()
	if st.Jobs != 3 {
		t.Fatalf("jobs = %d", st.Jobs)
	}
	if st.BusyTime != 30*time.Millisecond {
		t.Fatalf("busy = %v", st.BusyTime)
	}
	// Jobs 2 and 3 waited 10ms and 20ms.
	if st.WaitTime != 30*time.Millisecond {
		t.Fatalf("wait = %v", st.WaitTime)
	}
	if st.MaxQueue != 3 {
		t.Fatalf("maxQueue = %d", st.MaxQueue)
	}
}

func TestStationIdlePeriod(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "dev")
	var last time.Duration
	e.Schedule(0, func() {
		s.Submit(Job{Service: time.Millisecond, Done: func(_, end time.Duration) { last = end }})
	})
	e.Schedule(time.Second, func() {
		s.Submit(Job{Service: time.Millisecond, Done: func(_, end time.Duration) { last = end }})
	})
	e.Run()
	if last != time.Second+time.Millisecond {
		t.Fatalf("last completion = %v", last)
	}
	if u := s.Utilization(); u > 0.01 {
		t.Fatalf("utilization = %v; want ~0.002", u)
	}
}

func TestStationZeroService(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "cpu")
	done := 0
	e.Schedule(0, func() {
		s.Submit(Job{Service: 0, Done: func(start, end time.Duration) {
			if start != end {
				t.Errorf("zero-service job start %v != end %v", start, end)
			}
			done++
		}})
		s.Submit(Job{Service: -time.Second, Done: func(_, _ time.Duration) { done++ }})
	})
	e.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
}

func TestTandemStations(t *testing.T) {
	// CPU (5ms) feeding device (10ms): completion of the second job is
	// bounded by the device, not the CPU.
	e := NewEngine()
	cpu := NewStation(e, "cpu")
	dev := NewStation(e, "dev")
	var completions []time.Duration
	submitWrite := func(at time.Duration) {
		e.Schedule(at, func() {
			cpu.Submit(Job{Service: 5 * time.Millisecond, Done: func(_, _ time.Duration) {
				dev.Submit(Job{Service: 10 * time.Millisecond, Done: func(_, end time.Duration) {
					completions = append(completions, end)
				}})
			}})
		})
	}
	submitWrite(0)
	submitWrite(0)
	e.Run()
	if completions[0] != 15*time.Millisecond {
		t.Fatalf("first completion = %v; want 15ms", completions[0])
	}
	if completions[1] != 25*time.Millisecond { // cpu done at 10, waits for dev until 15, +10
		t.Fatalf("second completion = %v; want 25ms", completions[1])
	}
}
