package sim

import (
	"testing"
	"time"

	"edc/internal/race"
)

// TestScheduleAllocs pins the event loop's steady-state allocation
// behaviour: once the heap slice has reached its high-water mark, a
// Schedule/Step cycle must not allocate (the container/heap version
// boxed one interface value per push and one per pop).
func TestScheduleAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector perturbs allocation counts")
	}
	e := NewEngine()
	fn := func() {}
	// Reach the high-water mark, then drain so capacity is retained.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+time.Duration(i), fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		at := e.Now()
		for i := 0; i < 64; i++ {
			e.Schedule(at+time.Duration(i), fn)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("Schedule/Run cycle: %v allocs/op, want 0", allocs)
	}
}
