package sim

import "time"

// Server is the queueing abstraction shared by Station (one server) and
// MultiStation (k servers): the EDC engine compresses on a Server so a
// multicore host can be modeled by raising the worker count.
type Server interface {
	Submit(Job)
	Stats() Stats
	QueueLen() int
}

var (
	_ Server = (*Station)(nil)
	_ Server = (*MultiStation)(nil)
)

// MultiStation is a k-server FIFO queue: jobs start in arrival order on
// the first free server (an M/G/k-style station).
type MultiStation struct {
	eng     *Engine
	name    string
	workers int

	queue    []Job
	arrivals []time.Duration
	busy     int

	jobs     int64
	busyTime time.Duration
	waitTime time.Duration
	maxQueue int
}

// NewMultiStation returns an idle k-server station (k >= 1).
func NewMultiStation(e *Engine, name string, workers int) *MultiStation {
	if workers < 1 {
		workers = 1
	}
	return &MultiStation{eng: e, name: name, workers: workers}
}

// Name returns the station's name.
func (s *MultiStation) Name() string { return s.name }

// Workers returns the server count.
func (s *MultiStation) Workers() int { return s.workers }

// Submit enqueues j at the current virtual time; it starts immediately
// when a server is free.
func (s *MultiStation) Submit(j Job) {
	if j.Service < 0 {
		j.Service = 0
	}
	s.queue = append(s.queue, j)
	s.arrivals = append(s.arrivals, s.eng.Now())
	depth := len(s.queue) + s.busy
	if depth > s.maxQueue {
		s.maxQueue = depth
	}
	s.dispatch()
}

// dispatch starts queued jobs while servers are free.
func (s *MultiStation) dispatch() {
	for s.busy < s.workers && len(s.queue) > 0 {
		j := s.queue[0]
		arr := s.arrivals[0]
		s.queue = s.queue[1:]
		s.arrivals = s.arrivals[1:]
		s.busy++
		start := s.eng.Now()
		s.waitTime += start - arr
		s.eng.ScheduleAfter(j.Service, func() {
			end := s.eng.Now()
			s.jobs++
			s.busyTime += end - start
			s.busy--
			if j.Done != nil {
				j.Done(start, end)
			}
			s.dispatch()
		})
	}
}

// QueueLen returns the number of jobs waiting (excluding those in
// service).
func (s *MultiStation) QueueLen() int { return len(s.queue) }

// Busy returns the number of occupied servers.
func (s *MultiStation) Busy() int { return s.busy }

// Stats returns a snapshot of the counters. BusyTime sums across
// servers, so it can exceed elapsed virtual time.
func (s *MultiStation) Stats() Stats {
	return Stats{Jobs: s.jobs, BusyTime: s.busyTime, WaitTime: s.waitTime, MaxQueue: s.maxQueue}
}
