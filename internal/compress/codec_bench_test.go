package compress_test

import (
	"fmt"
	"testing"

	"edc/internal/compress"
	_ "edc/internal/compress/bwz"
	_ "edc/internal/compress/gz"
	_ "edc/internal/compress/lz4x"
	_ "edc/internal/compress/lzf"
	"edc/internal/datagen"
)

// benchSizes spans a single 4 KiB block, the SD merge grain, and a large
// sequential run.
var benchSizes = []struct {
	name string
	n    int
}{
	{"4KiB", 4 << 10},
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
}

// benchProfiles are the four payload models of the evaluation, from
// highly compressible (linux-src) to incompressible (media).
func benchProfiles() []datagen.Profile {
	return []datagen.Profile{
		datagen.LinuxSrc(),
		datagen.FirefoxBin(),
		datagen.Enterprise(),
		datagen.Media(),
	}
}

func benchCodecs(b *testing.B) []compress.Codec {
	b.Helper()
	reg := compress.Default()
	var out []compress.Codec
	for _, name := range []string{"lzf", "lz4", "gz", "bwz"} {
		c, err := reg.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// BenchmarkCompress measures codec throughput and allocations over every
// (codec, profile, size) cell. The AppendCompress rows are the device
// hot path: steady-state they should run at zero or near-zero allocs/op.
func BenchmarkCompress(b *testing.B) {
	for _, c := range benchCodecs(b) {
		for _, p := range benchProfiles() {
			gen := datagen.New(p, 7)
			for _, sz := range benchSizes {
				src := gen.Block(0, sz.n, 0)
				b.Run(fmt.Sprintf("%s/%s/%s", c.Name(), p.Name, sz.name), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(sz.n))
					for i := 0; i < b.N; i++ {
						_ = c.Compress(src)
					}
				})
			}
		}
	}
}

// BenchmarkAppendCompress measures the recycled-buffer path used by the
// replay pipeline.
func BenchmarkAppendCompress(b *testing.B) {
	for _, c := range benchCodecs(b) {
		a, ok := c.(compress.Appender)
		if !ok {
			continue
		}
		for _, p := range benchProfiles() {
			gen := datagen.New(p, 7)
			for _, sz := range benchSizes {
				src := gen.Block(0, sz.n, 0)
				b.Run(fmt.Sprintf("%s/%s/%s", c.Name(), p.Name, sz.name), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(sz.n))
					var buf []byte
					for i := 0; i < b.N; i++ {
						buf = a.AppendCompress(buf[:0], src)
					}
				})
			}
		}
	}
}

// BenchmarkDecompressAppend measures the recycled-buffer read path used
// by verify-mode replay: steady-state it should run at zero allocs/op.
func BenchmarkDecompressAppend(b *testing.B) {
	for _, c := range benchCodecs(b) {
		da, ok := c.(compress.DecompressAppender)
		if !ok {
			continue
		}
		for _, p := range benchProfiles() {
			gen := datagen.New(p, 7)
			for _, sz := range benchSizes {
				src := gen.Block(0, sz.n, 0)
				comp := c.Compress(src)
				b.Run(fmt.Sprintf("%s/%s/%s", c.Name(), p.Name, sz.name), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(sz.n))
					var buf []byte
					for i := 0; i < b.N; i++ {
						var err error
						buf, err = da.DecompressAppend(buf[:0], comp, sz.n)
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkDecompress covers the read path.
func BenchmarkDecompress(b *testing.B) {
	for _, c := range benchCodecs(b) {
		for _, p := range benchProfiles() {
			gen := datagen.New(p, 7)
			for _, sz := range benchSizes {
				src := gen.Block(0, sz.n, 0)
				comp := c.Compress(src)
				b.Run(fmt.Sprintf("%s/%s/%s", c.Name(), p.Name, sz.name), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(sz.n))
					for i := 0; i < b.N; i++ {
						if _, err := c.Decompress(comp, sz.n); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
