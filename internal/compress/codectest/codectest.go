// Package codectest provides a conformance suite run against every codec
// implementation: round trips over adversarial and realistic payloads,
// corruption rejection, and a testing/quick property over random inputs.
package codectest

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"edc/internal/compress"
)

// textish returns n bytes of low-entropy English-like text.
func textish(n int, seed int64) []byte {
	words := []string{
		"the", "elastic", "data", "compression", "flash", "storage",
		"system", "request", "latency", "throughput", "block", "device",
		"write", "read", "queue", "idle", "bursty", "workload", "monitor",
	}
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(12) == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:n])
}

func random(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func repeated(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i % 7)
	}
	return out
}

// Corpus returns the named standard test payloads.
func Corpus() map[string][]byte {
	return map[string][]byte{
		"empty":       {},
		"one-byte":    {0x42},
		"two-bytes":   {0x42, 0x42},
		"all-zero-4k": make([]byte, 4096),
		"all-ff":      bytes.Repeat([]byte{0xff}, 1000),
		"repeated":    repeated(8192),
		"text-4k":     textish(4096, 1),
		"text-64k":    textish(65536, 2),
		"random-4k":   random(4096, 3),
		"random-64k":  random(65536, 4),
		"mixed":       append(textish(20000, 5), random(20000, 6)...),
		"short-text":  []byte("abcabcabcabcabc"),
		"alternating": bytes.Repeat([]byte{0, 255}, 3000),
		"sawtooth": func() []byte {
			b := make([]byte, 5000)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"runs-of-runs": bytes.Repeat(append(bytes.Repeat([]byte{'a'}, 100), 'b'), 50),
	}
}

// RunRoundTrip exercises c over the whole corpus.
func RunRoundTrip(t *testing.T, c compress.Codec) {
	t.Helper()
	for name, src := range Corpus() {
		src := src
		t.Run(name, func(t *testing.T) {
			comp := c.Compress(src)
			got, err := c.Decompress(comp, len(src))
			if err != nil {
				t.Fatalf("%s: Decompress: %v", c.Name(), err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s: round trip mismatch (len got %d want %d)", c.Name(), len(got), len(src))
			}
			if a, ok := c.(compress.Appender); ok {
				// AppendCompress must produce Compress's exact bytes,
				// both from scratch and after an existing prefix.
				if ac := a.AppendCompress(nil, src); !bytes.Equal(ac, comp) {
					t.Fatalf("%s: AppendCompress(nil) differs from Compress (len %d vs %d)",
						c.Name(), len(ac), len(comp))
				}
				pre := []byte{0xde, 0xad}
				ac := a.AppendCompress(append([]byte(nil), pre...), src)
				if !bytes.Equal(ac[:2], pre) || !bytes.Equal(ac[2:], comp) {
					t.Fatalf("%s: AppendCompress after prefix corrupted output", c.Name())
				}
			}
			if da, ok := c.(compress.DecompressAppender); ok {
				// DecompressAppend must produce Decompress's exact bytes,
				// both from scratch and after an existing prefix (back
				// references must never reach into the prefix).
				dc, err := da.DecompressAppend(nil, comp, len(src))
				if err != nil {
					t.Fatalf("%s: DecompressAppend(nil): %v", c.Name(), err)
				}
				if !bytes.Equal(dc, src) {
					t.Fatalf("%s: DecompressAppend(nil) differs from source (len %d vs %d)",
						c.Name(), len(dc), len(src))
				}
				pre := []byte{0xbe, 0xef}
				dc, err = da.DecompressAppend(append([]byte(nil), pre...), comp, len(src))
				if err != nil {
					t.Fatalf("%s: DecompressAppend after prefix: %v", c.Name(), err)
				}
				if !bytes.Equal(dc[:2], pre) || !bytes.Equal(dc[2:], src) {
					t.Fatalf("%s: DecompressAppend after prefix corrupted output", c.Name())
				}
			}
		})
	}
}

// RunCompressesRedundantData asserts the codec actually shrinks
// low-entropy payloads.
func RunCompressesRedundantData(t *testing.T, c compress.Codec, minRatio float64) {
	t.Helper()
	src := textish(65536, 42)
	comp := c.Compress(src)
	r := compress.Ratio(len(src), len(comp))
	if r < minRatio {
		t.Fatalf("%s: ratio %.2f on text; want >= %.2f", c.Name(), r, minRatio)
	}
}

// RunQuick round-trips random structured inputs via testing/quick.
func RunQuick(t *testing.T, c compress.Codec) {
	t.Helper()
	f := func(seed int64, kind uint8, size uint16) bool {
		n := int(size) % 20000
		var src []byte
		switch kind % 4 {
		case 0:
			src = random(n, seed)
		case 1:
			src = textish(n, seed)
		case 2:
			src = make([]byte, n) // zeros
		default:
			// random with planted repeats
			src = random(n, seed)
			if n > 64 {
				copy(src[n/2:], src[:n/4])
			}
		}
		comp := c.Compress(src)
		got, err := c.Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
}

// RunRejectsCorruption flips bits/truncates and expects either an error or
// a non-matching output — never a panic.
func RunRejectsCorruption(t *testing.T, c compress.Codec) {
	t.Helper()
	src := textish(8192, 9)
	comp := c.Compress(src)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		bad := append([]byte(nil), comp...)
		switch trial % 3 {
		case 0:
			if len(bad) == 0 {
				continue
			}
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		case 1:
			bad = bad[:rng.Intn(len(bad)+1)]
		case 2:
			bad = append(bad, byte(rng.Intn(256)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic on corrupt input (trial %d): %v", c.Name(), trial, r)
				}
			}()
			got, err := c.Decompress(bad, len(src))
			if err == nil && !bytes.Equal(got, src) {
				// Silent mis-decode is acceptable for checksum-free codec
				// payloads (the frame layer adds CRC); what matters is no
				// panic and no out-of-bounds.
				_ = got
			}
		}()
	}
}

// RunBench benchmarks Compress and Decompress over a 256 KiB text block.
func RunBench(b *testing.B, c compress.Codec) {
	src := textish(256<<10, 77)
	comp := c.Compress(src)
	b.Run(fmt.Sprintf("%s/compress", c.Name()), func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			_ = c.Compress(src)
		}
	})
	b.Run(fmt.Sprintf("%s/decompress", c.Name()), func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := c.Decompress(comp, len(src)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
