package codectest

import (
	"bytes"
	"testing"

	"edc/internal/compress"
)

// FuzzDecompress drives a codec's Decompress with arbitrary bytes; the
// only acceptable outcomes are a clean error or a successful decode —
// never a panic or out-of-bounds access.
func FuzzDecompress(f *testing.F, c compress.Codec) {
	for _, src := range Corpus() {
		f.Add(c.Compress(src), len(src))
	}
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0x00, 0x12}, 4096)
	f.Fuzz(func(t *testing.T, data []byte, origLen int) {
		if origLen < 0 || origLen > 1<<20 {
			return
		}
		out, err := c.Decompress(data, origLen)
		if err == nil && len(out) != origLen {
			t.Fatalf("%s: silent size mismatch: %d != %d", c.Name(), len(out), origLen)
		}
	})
}

// FuzzRoundTrip compresses arbitrary input and requires exact recovery.
func FuzzRoundTrip(f *testing.F, c compress.Codec) {
	for _, src := range Corpus() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<20 {
			return
		}
		comp := c.Compress(src)
		got, err := c.Decompress(comp, len(src))
		if err != nil {
			t.Fatalf("%s: decompress own output: %v", c.Name(), err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch", c.Name())
		}
	})
}
