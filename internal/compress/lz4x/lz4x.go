// Package lz4x implements an LZ4-block-format-style codec: token-encoded
// literal runs and matches with 16-bit offsets. It is the fastest and
// lowest-ratio codec in the suite (the paper's Lz4 reference point in
// Fig. 2).
//
// Sequence layout (per the LZ4 block format):
//
//	token: high nibble = literal count (15 ⇒ extended with 255-bytes),
//	       low nibble  = match length - 4 (15 ⇒ extended)
//	literals
//	2-byte little-endian match offset (absent in the final sequence)
//	extended match length bytes
package lz4x

import (
	"encoding/binary"

	"edc/internal/compress"
)

const (
	hashBits = 15
	hashSize = 1 << hashBits
	minMatch = 4
	maxOff   = 65535
	// skipTrigger implements LZ4's acceleration: after repeated match
	// misses the scan step grows, keeping worst-case (incompressible)
	// input fast.
	skipTrigger = 6
)

// Codec is the LZ4-style codec. The zero value is ready to use.
type Codec struct{}

// New returns the lz4x codec.
func New() *Codec { return &Codec{} }

// Name implements compress.Codec.
func (*Codec) Name() string { return "lz4" }

// Tag implements compress.Codec.
func (*Codec) Tag() compress.Tag { return compress.TagLZ4 }

func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

func load4(src []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(src[i:])
}

func writeLen(out []byte, n int) []byte {
	for n >= 255 {
		out = append(out, 255)
		n -= 255
	}
	return append(out, byte(n))
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) []byte {
	return c.AppendCompress(make([]byte, 0, len(src)+len(src)/32+16), src)
}

// AppendCompress implements compress.Appender: it appends the
// compressed form of src to dst (growing it as needed) and returns the
// extended slice. The hot replay path calls it with pooled buffers so a
// compression allocates nothing in steady state.
func (*Codec) AppendCompress(dst, src []byte) []byte {
	out := dst
	if len(src) == 0 {
		return out
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	searches := 0
	emit := func(litEnd, matchLen, offset int) {
		litLen := litEnd - anchor
		var token byte
		if litLen >= 15 {
			token = 0xf0
		} else {
			token = byte(litLen) << 4
		}
		ml := matchLen - minMatch
		if ml >= 15 {
			token |= 0x0f
		} else {
			token |= byte(ml)
		}
		out = append(out, token)
		if litLen >= 15 {
			out = writeLen(out, litLen-15)
		}
		out = append(out, src[anchor:litEnd]...)
		out = append(out, byte(offset), byte(offset>>8))
		if ml >= 15 {
			out = writeLen(out, ml-15)
		}
	}
	for i+minMatch <= len(src)-minMatch {
		h := hash4(load4(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || i-int(cand) > maxOff || load4(src, int(cand)) != load4(src, i) {
			searches++
			i += 1 + searches>>skipTrigger
			continue
		}
		searches = 0
		ref := int(cand)
		mlen := minMatch
		for i+mlen < len(src) && src[ref+mlen] == src[i+mlen] {
			mlen++
		}
		emit(i, mlen, i-ref)
		i += mlen
		anchor = i
		if i+minMatch <= len(src) {
			table[hash4(load4(src, i-2))] = int32(i - 2)
		}
	}
	// Final literal-only sequence.
	litLen := len(src) - anchor
	var token byte
	if litLen >= 15 {
		token = 0xf0
	} else {
		token = byte(litLen) << 4
	}
	out = append(out, token)
	if litLen >= 15 {
		out = writeLen(out, litLen-15)
	}
	out = append(out, src[anchor:]...)
	return out
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(src []byte, origLen int) ([]byte, error) {
	out, err := c.DecompressAppend(make([]byte, 0, origLen), src, origLen)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressAppend implements compress.DecompressAppender: it appends
// the decompressed form of src to dst (growing it as needed) and returns
// the extended slice. Match offsets are resolved relative to the bytes
// appended by this call, so a dst prefix never leaks into the output.
func (*Codec) DecompressAppend(dst, src []byte, origLen int) ([]byte, error) {
	base := len(dst)
	out := dst
	i := 0
	readLen := func(n int) (int, bool) {
		for {
			if i >= len(src) {
				return 0, false
			}
			b := src[i]
			i++
			n += int(b)
			if b != 255 {
				return n, true
			}
		}
	}
	for i < len(src) {
		token := src[i]
		i++
		litLen := int(token >> 4)
		if litLen == 15 {
			var ok bool
			litLen, ok = readLen(15)
			if !ok {
				return dst, compress.ErrCorrupt
			}
		}
		if i+litLen > len(src) || len(out)-base+litLen > origLen {
			return dst, compress.ErrCorrupt
		}
		out = append(out, src[i:i+litLen]...)
		i += litLen
		if i >= len(src) {
			break // final sequence carries no match
		}
		if i+2 > len(src) {
			return dst, compress.ErrCorrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		mlen := int(token & 0x0f)
		if mlen == 15 {
			var ok bool
			mlen, ok = readLen(15)
			if !ok {
				return dst, compress.ErrCorrupt
			}
		}
		mlen += minMatch
		ref := len(out) - offset
		if offset == 0 || ref < base || len(out)-base+mlen > origLen {
			return dst, compress.ErrCorrupt
		}
		for k := 0; k < mlen; k++ {
			out = append(out, out[ref+k])
		}
	}
	if len(out)-base != origLen {
		return dst, compress.ErrSizeMismatch
	}
	return out, nil
}

func init() {
	compress.MustRegister(New())
}
