package lz4x

import (
	"bytes"
	"testing"

	"edc/internal/compress/codectest"
)

func TestRoundTrip(t *testing.T)  { codectest.RunRoundTrip(t, New()) }
func TestQuick(t *testing.T)      { codectest.RunQuick(t, New()) }
func TestCorruption(t *testing.T) { codectest.RunRejectsCorruption(t, New()) }
func TestCompresses(t *testing.T) { codectest.RunCompressesRedundantData(t, New(), 1.4) }
func BenchmarkCodec(b *testing.B) { codectest.RunBench(b, New()) }

func TestExtendedLiteralAndMatchLengths(t *testing.T) {
	// >15 literals followed by a >15+4 byte match exercises both extended
	// length encodings.
	lit := make([]byte, 100)
	for i := range lit {
		lit[i] = byte(i)
	}
	src := append(append(append([]byte{}, lit...), lit[:40]...), lit...)
	c := New()
	got, err := c.Decompress(c.Compress(src), len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestOverlappingMatch(t *testing.T) {
	// "aaaa..." forces offset-1 overlapping copies.
	src := bytes.Repeat([]byte{'a'}, 1000)
	c := New()
	comp := c.Compress(src)
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed: %v", err)
	}
	if len(comp) > 40 {
		t.Fatalf("1000-byte run compressed to only %d bytes", len(comp))
	}
}

func TestDecompressRejectsZeroOffset(t *testing.T) {
	// token: 1 literal, match len 4; offset 0 is invalid.
	bad := []byte{0x10, 'a', 0x00, 0x00}
	if _, err := New().Decompress(bad, 10); err == nil {
		t.Fatal("expected error for zero offset")
	}
}

func TestDecompressRejectsTruncatedExtension(t *testing.T) {
	// Extended literal length that never terminates.
	bad := []byte{0xf0, 255, 255}
	if _, err := New().Decompress(bad, 4096); err == nil {
		t.Fatal("expected error for truncated length extension")
	}
}
