package compress

import (
	"bytes"
	"testing"
)

func TestNoneRoundTrip(t *testing.T) {
	src := []byte("hello, flash storage")
	c := None.Compress(src)
	if !bytes.Equal(c, src) {
		t.Fatalf("None.Compress changed data")
	}
	d, err := None.Decompress(c, len(src))
	if err != nil || !bytes.Equal(d, src) {
		t.Fatalf("None.Decompress = %q, %v", d, err)
	}
}

func TestNoneSizeMismatch(t *testing.T) {
	if _, err := None.Decompress([]byte("abc"), 5); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if _, err := r.ByTag(TagNone); err != nil {
		t.Fatalf("ByTag(TagNone): %v", err)
	}
	if _, err := r.ByName("none"); err != nil {
		t.Fatalf("ByName(none): %v", err)
	}
	if _, err := r.ByTag(TagLZF); err == nil {
		t.Fatal("expected unknown tag error in fresh registry")
	}
	if _, err := r.ByTag(99); err == nil {
		t.Fatal("expected error for tag > MaxTag")
	}
}

type fakeCodec struct {
	name string
	tag  Tag
}

func (f fakeCodec) Name() string                               { return f.name }
func (f fakeCodec) Tag() Tag                                   { return f.tag }
func (f fakeCodec) Compress(src []byte) []byte                 { return src }
func (f fakeCodec) Decompress(s []byte, n int) ([]byte, error) { return s, nil }

func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(fakeCodec{"x", 5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(fakeCodec{"y", 5}); err == nil {
		t.Fatal("expected tag conflict")
	}
	if err := r.Register(fakeCodec{"x", 6}); err == nil {
		t.Fatal("expected name conflict")
	}
	if err := r.Register(fakeCodec{"z", 9}); err == nil {
		t.Fatal("expected out-of-range tag error")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(4096, 2048); got != 2.0 {
		t.Fatalf("Ratio = %v; want 2.0", got)
	}
	if got := Ratio(4096, 0); got != 0 {
		t.Fatalf("Ratio with zero divisor = %v; want 0", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	r := NewRegistry()
	src := []byte("some payload worth framing, some payload worth framing")
	f := EncodeFrame(None, src)
	out, err := DecodeFrame(r, f)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("frame round trip mismatch")
	}
}

func TestFrameCorruption(t *testing.T) {
	r := NewRegistry()
	src := []byte("payload")
	f := EncodeFrame(None, src)

	short := f[:frameHeaderSize-1]
	if _, err := DecodeFrame(r, short); err == nil {
		t.Fatal("expected error for truncated frame")
	}

	bad := append([]byte(nil), f...)
	bad[0] = 'X'
	if _, err := DecodeFrame(r, bad); err == nil {
		t.Fatal("expected error for bad magic")
	}

	flipped := append([]byte(nil), f...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := DecodeFrame(r, flipped); err == nil {
		t.Fatal("expected error for checksum mismatch")
	}

	badTag := append([]byte(nil), f...)
	badTag[4] = 6 // unregistered tag
	if _, err := DecodeFrame(r, badTag); err == nil {
		t.Fatal("expected error for unknown tag")
	}
}
