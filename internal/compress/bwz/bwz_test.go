package bwz

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"edc/internal/compress/codectest"
)

func TestRoundTrip(t *testing.T)  { codectest.RunRoundTrip(t, New()) }
func TestQuick(t *testing.T)      { codectest.RunQuick(t, New()) }
func TestCorruption(t *testing.T) { codectest.RunRejectsCorruption(t, New()) }
func TestCompresses(t *testing.T) { codectest.RunCompressesRedundantData(t, New(), 2.5) }
func BenchmarkCodec(b *testing.B) { codectest.RunBench(b, New()) }

func TestSuffixArraySorted(t *testing.T) {
	s := []byte("banana")
	sa := suffixArray(s, new(scratch))
	if len(sa) != len(s)+1 {
		t.Fatalf("sa length %d; want %d", len(sa), len(s)+1)
	}
	if sa[0] != int32(len(s)) {
		t.Fatalf("sentinel suffix not first: sa[0]=%d", sa[0])
	}
	suffix := func(i int32) string { return string(s[i:]) }
	for j := 1; j < len(sa)-1; j++ {
		if suffix(sa[j]) >= suffix(sa[j+1]) {
			t.Fatalf("suffixes out of order at %d: %q >= %q", j, suffix(sa[j]), suffix(sa[j+1]))
		}
	}
}

func TestBWTKnownVector(t *testing.T) {
	// banana: sorted sentinel rotations give last column "annb$aa" with $
	// dropped -> "annbaa", primary = row of original string.
	l, p := bwt([]byte("banana"), new(scratch))
	got, err := unbwt(l, p)
	if err != nil || string(got) != "banana" {
		t.Fatalf("unbwt(bwt(banana)) = %q, %v", got, err)
	}
}

func TestBWTQuick(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		l, p := bwt(data, new(scratch))
		got, err := unbwt(l, p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnbwtRejectsBadPrimary(t *testing.T) {
	l, _ := bwt([]byte("hello world"), new(scratch))
	if _, err := unbwt(l, len(l)+5); err == nil {
		t.Fatal("expected error for out-of-range primary index")
	}
}

func TestMTFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(2000)
		src := make([]byte, n)
		rng.Read(src)
		if !bytes.Equal(unmtf(mtf(src, new(scratch))), src) {
			t.Fatalf("mtf round trip failed (trial %d)", trial)
		}
	}
}

func TestMTFFrontLoading(t *testing.T) {
	// Repeated characters should produce zeros after the first occurrence.
	out := mtf([]byte("aaaa"), new(scratch))
	if out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("mtf(aaaa) = %v; want trailing zeros", out)
	}
}

func TestRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(3000)
		src := make([]byte, n)
		for i := range src {
			if rng.Intn(3) > 0 {
				src[i] = 0 // zero-heavy, like MTF output
			} else {
				src[i] = byte(rng.Intn(255) + 1)
			}
		}
		got, err := rleDecode(rleEncode(src, new(scratch)), len(src))
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("rle round trip failed (trial %d): %v", trial, err)
		}
	}
}

func TestRLELongZeroRun(t *testing.T) {
	src := make([]byte, 100000) // single huge zero run
	syms := rleEncode(src, new(scratch))
	if len(syms) > 20 {
		t.Fatalf("100k zero run encoded to %d symbols; want logarithmic", len(syms))
	}
	got, err := rleDecode(syms, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("long run round trip failed: %v", err)
	}
}

func TestMultiBlockInput(t *testing.T) {
	// Exceed MaxBlock to force the multi-block path.
	src := bytes.Repeat([]byte("0123456789abcdef"), (MaxBlock/16)+1024)
	c := New()
	comp := c.Compress(src)
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("multi-block round trip failed: %v", err)
	}
}

func TestBestRatioOnText(t *testing.T) {
	src := bytes.Repeat([]byte("elastic data compression for flash-based storage systems. "), 400)
	comp := New().Compress(src)
	if len(comp) >= len(src)/5 {
		t.Fatalf("bwz ratio too low on repetitive text: %d of %d", len(comp), len(src))
	}
}
