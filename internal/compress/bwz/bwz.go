// Package bwz implements a Bzip2-class block codec from scratch:
// Burrows–Wheeler transform (suffix array by prefix doubling), move-to-
// front, bzip2-style zero run-length coding (RUNA/RUNB bijective base-2)
// and canonical Huffman entropy coding. It is the slowest and highest-
// ratio codec in the suite — the paper's Bzip2 reference point, which EDC
// would reserve for deep-idle periods and which the fixed-Bzip2 baseline
// applies everywhere (Figs. 2, 8, 10).
//
// Container layout (bit stream, LSB first):
//
//	[24-bit primary index][code lengths for 258-symbol alphabet][symbols]
//
// The symbol alphabet after MTF+RLE is: RUNA=0, RUNB=1 (zero-run digits),
// 2..256 for MTF values 1..255, and EOB=257.
package bwz

import (
	"bytes"
	"sync"

	"edc/internal/bitio"
	"edc/internal/compress"
	"edc/internal/huffman"
)

const (
	symRunA = 0
	symRunB = 1
	symEOB  = 257
	numSyms = 258

	// MaxBlock bounds the BWT block size; larger inputs are split into
	// independent blocks (each with its own primary index and tables).
	MaxBlock = 1 << 20
)

// Codec is the bwz codec. The zero value is ready to use.
type Codec struct{}

// New returns the bwz codec.
func New() *Codec { return &Codec{} }

// Name implements compress.Codec.
func (*Codec) Name() string { return "bwz" }

// Tag implements compress.Codec.
func (*Codec) Tag() compress.Tag { return compress.TagBWZ }

// scratch is the per-block compression workspace: the suffix-array
// int32 arrays dominate bwz's allocation profile (4 slices of block
// length per block), so they are pooled and reused across Compress
// calls. A sync.Pool keeps the codec safe for concurrent use by
// parallel replay workers.
type scratch struct {
	sa, rank, tmp, cnt []int32
	l                  []byte   // BWT last column
	mtfd               []byte   // move-to-front output
	syms               []uint16 // RLE symbol stream
	freqs              [numSyms]int64

	// Entropy-coding scratch, reused across blocks and Compress calls.
	builder huffman.Builder
	lengths []uint8
	enc     huffman.Encoder
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// decScratch is the per-decompression workspace: the bit reader, the
// Huffman decoder (owning its lookup table), the RLE/MTF intermediate
// buffers, and the LF-mapping array for the inverse BWT. Pooling it
// strips every per-call allocation from Decompress except the output
// itself; a sync.Pool keeps the codec safe for concurrent use by
// parallel replay workers.
type decScratch struct {
	r       bitio.Reader
	lengths []uint8
	dec     huffman.Decoder
	syms    []uint16
	mtfd    []byte
	lf      []int32
}

var decPool = sync.Pool{New: func() interface{} { return new(decScratch) }}

// grow32 returns a len-n int32 slice reusing b's storage when possible.
// Contents are unspecified; callers fully overwrite (or zero) it.
func grow32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// suffixArray returns the suffix array of s+sentinel using prefix
// doubling with counting-sort passes (O(n log n)); index n (the
// sentinel) sorts first. The returned slice aliases st.sa.
func suffixArray(s []byte, st *scratch) []int32 {
	n := len(s) + 1 // including sentinel
	st.sa = grow32(st.sa, n)
	st.rank = grow32(st.rank, n)
	st.tmp = grow32(st.tmp, n)
	cntLen := n + 1
	if cntLen < 257 {
		cntLen = 257 // round 0 buckets span the byte alphabet + sentinel
	}
	st.cnt = grow32(st.cnt, cntLen)
	sa, rank, tmp, cnt := st.sa, st.rank, st.tmp, st.cnt
	for i := range cnt {
		cnt[i] = 0
	}

	// Round 0: counting sort by first character (sentinel = 0).
	key0 := func(i int) int32 {
		if i == n-1 {
			return 0
		}
		return int32(s[i]) + 1
	}
	for i := 0; i < n; i++ {
		cnt[key0(i)]++
	}
	for v := int32(1); v <= 256; v++ {
		cnt[v] += cnt[v-1]
	}
	for i := n - 1; i >= 0; i-- {
		k := key0(i)
		cnt[k]--
		sa[cnt[k]] = int32(i)
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if key0(int(sa[i])) != key0(int(sa[i-1])) {
			rank[sa[i]]++
		}
	}

	for k := 1; int(rank[sa[n-1]]) != n-1; k <<= 1 {
		// Sort by (rank[i], rank[i+k]) with two radix passes.
		// Pass 1 (second key): suffixes i >= n-k have empty second key
		// (smallest); they go first, followed by sa order shifted by -k.
		idx := 0
		for i := n - k; i < n; i++ {
			tmp[idx] = int32(i)
			idx++
		}
		for i := 0; i < n; i++ {
			if int(sa[i]) >= k {
				tmp[idx] = sa[i] - int32(k)
				idx++
			}
		}
		// Pass 2 (first key): stable counting sort by rank.
		for i := range cnt[:n] {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]]++
		}
		for v := 1; v < n; v++ {
			cnt[v] += cnt[v-1]
		}
		for i := n - 1; i >= 0; i-- {
			r := rank[tmp[i]]
			cnt[r]--
			sa[cnt[r]] = tmp[i]
		}
		// Re-rank.
		second := func(i int32) int32 {
			if int(i)+k < n {
				return rank[int(i)+k] + 1
			}
			return 0
		}
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if rank[sa[i]] != rank[sa[i-1]] || second(sa[i]) != second(sa[i-1]) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
	}
	return sa
}

// bwt computes the sentinel Burrows–Wheeler transform. It returns the
// last column (length len(s)) and the primary index: the sorted-rotation
// row occupied by the original string, whose last character (the
// sentinel) is omitted from the output. The returned slice aliases st.l.
func bwt(s []byte, st *scratch) ([]byte, int) {
	sa := suffixArray(s, st)
	if cap(st.l) < len(s) {
		st.l = make([]byte, 0, len(s))
	}
	out := st.l[:0]
	primary := 0
	for j, i := range sa {
		if i == 0 {
			primary = j
			continue
		}
		out = append(out, s[i-1])
	}
	st.l = out
	return out, primary
}

// unbwt inverts bwt.
func unbwt(l []byte, primary int) ([]byte, error) {
	if len(l) == 0 {
		if primary != 0 {
			return nil, compress.ErrCorrupt
		}
		return []byte{}, nil
	}
	out := make([]byte, len(l))
	st := decPool.Get().(*decScratch)
	err := unbwtInto(out, l, primary, st)
	decPool.Put(st)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// unbwtInto inverts bwt, writing the original bytes into out (which
// must have length len(l) and must not alias l). The LF-mapping array
// lives in st so repeated inversions allocate nothing.
func unbwtInto(out, l []byte, primary int, st *decScratch) error {
	n := len(l)
	if n == 0 {
		if primary != 0 {
			return compress.ErrCorrupt
		}
		return nil
	}
	if primary < 1 || primary > n {
		return compress.ErrCorrupt
	}
	var count [256]int
	for _, c := range l {
		count[c]++
	}
	// c0[b] = row of the first occurrence of byte b in the first column;
	// row 0 is the sentinel rotation.
	var c0 [256]int
	sum := 1
	for b := 0; b < 256; b++ {
		c0[b] = sum
		sum += count[b]
	}
	// lf[j] maps conceptual row j (sentinel inserted at row `primary`) to
	// the row beginning with that row's last character.
	st.lf = grow32(st.lf, n+1)
	lf := st.lf
	var occ [256]int
	for j := 0; j <= n; j++ {
		if j == primary {
			lf[j] = 0 // the $-terminated row maps to the $ rotation
			continue
		}
		jj := j
		if j > primary {
			jj = j - 1
		}
		c := l[jj]
		lf[j] = int32(c0[c] + occ[c])
		occ[c]++
	}
	j := 0 // start at the sentinel rotation, whose last char is s[n-1]
	for k := n - 1; k >= 0; k-- {
		if j == primary {
			return compress.ErrCorrupt
		}
		jj := j
		if j > primary {
			jj = j - 1
		}
		out[k] = l[jj]
		j = int(lf[j])
	}
	if j != primary {
		return compress.ErrCorrupt
	}
	return nil
}

// mtf applies the move-to-front transform (output length equals input
// length). The returned slice aliases st.mtfd.
func mtf(src []byte, st *scratch) []byte {
	var alpha [256]byte
	for i := range alpha {
		alpha[i] = byte(i)
	}
	if cap(st.mtfd) < len(src) {
		st.mtfd = make([]byte, len(src))
	}
	st.mtfd = st.mtfd[:len(src)]
	out := st.mtfd
	for i, c := range src {
		// IndexByte is the vectorized scan; every byte value is present in
		// alpha, so the result is always >= 0.
		j := bytes.IndexByte(alpha[:], c)
		out[i] = byte(j)
		copy(alpha[1:j+1], alpha[:j])
		alpha[0] = c
	}
	return out
}

// unmtf inverts mtf.
func unmtf(src []byte) []byte {
	out := make([]byte, len(src))
	copy(out, src)
	unmtfInPlace(out)
	return out
}

// unmtfInPlace inverts mtf in place: each output byte depends only on
// the input byte at the same position and the alphabet state, so the
// buffer can be rewritten as it is scanned.
func unmtfInPlace(b []byte) {
	var alpha [256]byte
	for i := range alpha {
		alpha[i] = byte(i)
	}
	for i, j := range b {
		c := alpha[j]
		b[i] = c
		copy(alpha[1:int(j)+1], alpha[:j])
		alpha[0] = c
	}
}

// rleEncode maps MTF output to the RUNA/RUNB symbol stream. The
// returned slice aliases st.syms.
func rleEncode(mtfd []byte, st *scratch) []uint16 {
	if cap(st.syms) < len(mtfd)/2+8 {
		st.syms = make([]uint16, 0, len(mtfd)/2+8)
	}
	out := st.syms[:0]
	i := 0
	for i < len(mtfd) {
		if mtfd[i] == 0 {
			run := 0
			for i < len(mtfd) && mtfd[i] == 0 {
				run++
				i++
			}
			// bijective base-2 digits of run
			for run > 0 {
				if run&1 == 1 {
					out = append(out, symRunA)
					run = (run - 1) / 2
				} else {
					out = append(out, symRunB)
					run = (run - 2) / 2
				}
			}
			continue
		}
		out = append(out, uint16(mtfd[i])+1)
		i++
	}
	st.syms = out
	return out
}

// rleDecode inverts rleEncode given the expected MTF length.
func rleDecode(syms []uint16, n int) ([]byte, error) {
	return rleDecodeInto(make([]byte, 0, n), syms, n)
}

// rleDecodeInto inverts rleEncode, appending exactly n bytes to dst
// (normally a reused scratch buffer passed as buf[:0]).
func rleDecodeInto(dst []byte, syms []uint16, n int) ([]byte, error) {
	base := len(dst)
	out := dst
	i := 0
	for i < len(syms) {
		s := syms[i]
		if s == symRunA || s == symRunB {
			run := 0
			shift := uint(0)
			for i < len(syms) && (syms[i] == symRunA || syms[i] == symRunB) {
				if syms[i] == symRunA {
					run += 1 << shift
				} else {
					run += 2 << shift
				}
				shift++
				i++
			}
			if len(out)-base+run > n {
				return nil, compress.ErrCorrupt
			}
			for k := 0; k < run; k++ {
				out = append(out, 0)
			}
			continue
		}
		if s < 2 || s > 256 || len(out)-base+1 > n {
			return nil, compress.ErrCorrupt
		}
		out = append(out, byte(s-1))
		i++
	}
	if len(out)-base != n {
		return nil, compress.ErrSizeMismatch
	}
	return out, nil
}

// compressBlock encodes one BWT block into w using st's scratch.
func compressBlock(w *bitio.Writer, block []byte, st *scratch) {
	l, primary := bwt(block, st)
	syms := rleEncode(mtf(l, st), st)

	freqs := st.freqs[:]
	for i := range freqs {
		freqs[i] = 0
	}
	freqs[symEOB] = 1
	for _, s := range syms {
		freqs[s]++
	}
	lengths, err := st.builder.Build(st.lengths, freqs, huffman.MaxBits)
	if err != nil {
		panic("bwz: " + err.Error())
	}
	st.lengths = lengths
	if err := st.enc.Reset(lengths); err != nil {
		panic("bwz: " + err.Error())
	}
	enc := &st.enc
	w.WriteBits(uint64(primary), 24)
	huffman.WriteLengths(w, lengths)
	for _, s := range syms {
		_ = enc.Encode(w, int(s))
	}
	_ = enc.Encode(w, symEOB)
}

// decompressBlockInto decodes one block of len(out) original bytes from
// r directly into out, using st for every intermediate buffer.
func decompressBlockInto(r *bitio.Reader, out []byte, st *decScratch) error {
	blockLen := len(out)
	p64, err := r.ReadBits(24)
	if err != nil {
		return compress.ErrCorrupt
	}
	lengths, err := huffman.ReadLengthsInto(r, st.lengths, numSyms)
	if err != nil {
		return compress.ErrCorrupt
	}
	st.lengths = lengths
	if err := st.dec.Reset(lengths); err != nil {
		return compress.ErrCorrupt
	}
	if cap(st.syms) < blockLen/2+8 {
		st.syms = make([]uint16, 0, blockLen/2+8)
	}
	syms := st.syms[:0]
	for {
		s, err := st.dec.Decode(r)
		if err != nil {
			return compress.ErrCorrupt
		}
		if s == symEOB {
			break
		}
		if len(syms) > 3*blockLen+16 {
			return compress.ErrCorrupt
		}
		syms = append(syms, uint16(s))
	}
	st.syms = syms
	mtfd, err := rleDecodeInto(st.mtfd[:0], syms, blockLen)
	if err != nil {
		return err
	}
	st.mtfd = mtfd
	unmtfInPlace(mtfd)
	return unbwtInto(out, mtfd, int(p64), st)
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) []byte {
	return c.AppendCompress(make([]byte, 0, len(src)/2+64), src)
}

// AppendCompress implements compress.Appender: it appends the
// compressed form of src to dst (growing it as needed) and returns the
// extended slice. The pooled scratch makes repeated compressions nearly
// allocation-free.
func (*Codec) AppendCompress(dst, src []byte) []byte {
	var w bitio.Writer
	w.ResetBuf(dst)
	st := scratchPool.Get().(*scratch)
	defer scratchPool.Put(st)
	for off := 0; off < len(src); off += MaxBlock {
		end := off + MaxBlock
		if end > len(src) {
			end = len(src)
		}
		compressBlock(&w, src[off:end], st)
	}
	if len(src) == 0 {
		compressBlock(&w, nil, st)
	}
	return w.Bytes()
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(src []byte, origLen int) ([]byte, error) {
	out, err := c.DecompressAppend(make([]byte, 0, origLen), src, origLen)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressAppend implements compress.DecompressAppender: it appends
// the decompressed form of src to dst (growing it at most once) and
// returns the extended slice. Each BWT block is inverted directly into
// its final position; all intermediate state comes from the pooled
// decScratch, so a steady-state call with a pre-sized dst allocates
// nothing.
func (*Codec) DecompressAppend(dst, src []byte, origLen int) ([]byte, error) {
	base := len(dst)
	out := dst
	if cap(out) < base+origLen {
		grown := make([]byte, base+origLen)
		copy(grown, out)
		out = grown
	} else {
		out = out[:base+origLen]
	}
	st := decPool.Get().(*decScratch)
	defer decPool.Put(st)
	r := &st.r
	r.Reset(src)
	pos := base
	remaining := origLen
	for {
		blockLen := remaining
		if blockLen > MaxBlock {
			blockLen = MaxBlock
		}
		if err := decompressBlockInto(r, out[pos:pos+blockLen], st); err != nil {
			return dst, err
		}
		pos += blockLen
		remaining -= blockLen
		if remaining == 0 {
			break
		}
	}
	return out, nil
}

func init() {
	compress.MustRegister(New())
}
