package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Streaming frame helpers: length-prefixed sequences of self-describing
// frames over io.Writer/io.Reader, used by tools that archive block
// payloads (each frame is independently decodable and CRC-protected).

// FrameWriter emits frames to an underlying writer.
type FrameWriter struct {
	w     io.Writer
	codec Codec
	n     int64
}

// NewFrameWriter frames every Write payload with codec c.
func NewFrameWriter(w io.Writer, c Codec) *FrameWriter {
	return &FrameWriter{w: w, codec: c}
}

// WriteBlock compresses and frames one block. Blocks are independent:
// corruption of one frame does not affect the others.
func (fw *FrameWriter) WriteBlock(p []byte) error {
	frame := EncodeFrame(fw.codec, p)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := fw.w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(frame); err != nil {
		return err
	}
	fw.n++
	return nil
}

// Blocks returns how many blocks have been written.
func (fw *FrameWriter) Blocks() int64 { return fw.n }

// FrameReader decodes a stream produced by FrameWriter.
type FrameReader struct {
	r   io.Reader
	reg *Registry
}

// NewFrameReader decodes frames using reg.
func NewFrameReader(r io.Reader, reg *Registry) *FrameReader {
	return &FrameReader{r: r, reg: reg}
}

// ReadBlock returns the next decompressed block, or io.EOF at a clean
// end of stream.
func (fr *FrameReader) ReadBlock() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(fr.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame length", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderSize || n > 1<<30 {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(fr.r, frame); err != nil {
		return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	return DecodeFrame(fr.reg, frame)
}

// VerifyStream scans a frame stream, checking every frame's CRC without
// keeping payloads; it returns the number of valid frames.
func VerifyStream(r io.Reader) (int64, error) {
	var count int64
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return count, nil
			}
			return count, fmt.Errorf("%w: frame length", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < frameHeaderSize || n > 1<<30 {
			return count, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return count, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		if string(frame[:4]) != frameMagic {
			return count, fmt.Errorf("%w: magic", ErrCorrupt)
		}
		payLen := int(binary.LittleEndian.Uint32(frame[9:]))
		if payLen != len(frame)-frameHeaderSize {
			return count, fmt.Errorf("%w: payload length", ErrCorrupt)
		}
		sum := binary.LittleEndian.Uint32(frame[13:])
		if crc32.ChecksumIEEE(frame[frameHeaderSize:]) != sum {
			return count, fmt.Errorf("%w: checksum", ErrCorrupt)
		}
		count++
	}
}
