// Package lzf implements an LZF-style byte-oriented Lempel-Ziv codec
// (the fast/low-ratio end of the paper's codec spectrum, used by EDC
// during high-intensity periods).
//
// Stream format (compatible in spirit with libLZF):
//
//	ctrl < 0x20:  literal run, ctrl+1 literal bytes follow
//	ctrl >= 0x20: back reference
//	    length  = ctrl>>5 (+ next byte if the 3-bit field is 7) + 2
//	    offset  = ((ctrl&0x1f)<<8 | next byte) + 1, counted back from
//	              the current output position
//
// Matches are found with a 3-byte hash table; maximum offset is 8 KiB,
// maximum match length 264.
package lzf

import (
	"edc/internal/compress"
)

const (
	hashBits  = 14
	hashSize  = 1 << hashBits
	maxOff    = 1 << 13 // 8192
	maxRef    = maxOff
	maxLit    = 32
	maxMatch  = 255 + 7 + 2 // extended length byte + field + base
	minMatch  = 3
	tailGuard = 4 // do not start matches within the final bytes
)

// Codec is the LZF codec. The zero value is ready to use.
type Codec struct{}

// New returns the LZF codec.
func New() *Codec { return &Codec{} }

// Name implements compress.Codec.
func (*Codec) Name() string { return "lzf" }

// Tag implements compress.Codec.
func (*Codec) Tag() compress.Tag { return compress.TagLZF }

func hash3(v uint32) uint32 {
	// Multiplicative hash of the low 3 bytes.
	return ((v & 0xffffff) * 2654435761) >> (32 - hashBits)
}

func load3(src []byte, i int) uint32 {
	return uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) []byte {
	return c.AppendCompress(make([]byte, 0, len(src)+len(src)/16+16), src)
}

// AppendCompress implements compress.Appender: it appends the
// compressed form of src to dst (growing it as needed) and returns the
// extended slice. The hot replay path calls it with pooled buffers so a
// compression allocates nothing in steady state.
func (*Codec) AppendCompress(dst, src []byte) []byte {
	out := dst
	if len(src) == 0 {
		return out
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0 // start of the pending literal run
	i := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLit {
				n = maxLit
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i+minMatch <= len(src)-tailGuard {
		h := hash3(load3(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || i-int(cand) > maxOff || load3(src, int(cand)) != load3(src, i) {
			i++
			continue
		}
		// Extend the match.
		ref := int(cand)
		mlen := minMatch
		limit := len(src) - i
		if limit > maxMatch {
			limit = maxMatch
		}
		for mlen < limit && src[ref+mlen] == src[i+mlen] {
			mlen++
		}
		flushLits(i)
		off := i - ref - 1
		l := mlen - 2
		if l < 7 {
			out = append(out, byte(l<<5)|byte(off>>8), byte(off))
		} else {
			out = append(out, 7<<5|byte(off>>8), byte(l-7), byte(off))
		}
		// Insert hashes inside the match so later matches can refer in.
		end := i + mlen
		for j := i + 1; j < end && j+minMatch <= len(src); j++ {
			table[hash3(load3(src, j))] = int32(j)
		}
		i = end
		litStart = i
	}
	flushLits(len(src))
	return out
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(src []byte, origLen int) ([]byte, error) {
	out, err := c.DecompressAppend(make([]byte, 0, origLen), src, origLen)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressAppend implements compress.DecompressAppender: it appends
// the decompressed form of src to dst (growing it as needed) and returns
// the extended slice. Back references are resolved relative to the bytes
// appended by this call, so a dst prefix never leaks into the output.
func (*Codec) DecompressAppend(dst, src []byte, origLen int) ([]byte, error) {
	base := len(dst)
	out := dst
	i := 0
	for i < len(src) {
		ctrl := int(src[i])
		i++
		if ctrl < 0x20 {
			n := ctrl + 1
			if i+n > len(src) || len(out)-base+n > origLen {
				return dst, compress.ErrCorrupt
			}
			out = append(out, src[i:i+n]...)
			i += n
			continue
		}
		l := ctrl >> 5
		if l == 7 {
			if i >= len(src) {
				return dst, compress.ErrCorrupt
			}
			l += int(src[i])
			i++
		}
		mlen := l + 2
		if i >= len(src) {
			return dst, compress.ErrCorrupt
		}
		off := (ctrl&0x1f)<<8 | int(src[i])
		i++
		ref := len(out) - off - 1
		if ref < base || len(out)-base+mlen > origLen {
			return dst, compress.ErrCorrupt
		}
		// Byte-by-byte copy: overlapping references are legal.
		for k := 0; k < mlen; k++ {
			out = append(out, out[ref+k])
		}
	}
	if len(out)-base != origLen {
		return dst, compress.ErrSizeMismatch
	}
	return out, nil
}

func init() {
	compress.MustRegister(New())
}
