package lzf

import (
	"bytes"
	"testing"

	"edc/internal/compress/codectest"
)

func TestRoundTrip(t *testing.T)  { codectest.RunRoundTrip(t, New()) }
func TestQuick(t *testing.T)      { codectest.RunQuick(t, New()) }
func TestCorruption(t *testing.T) { codectest.RunRejectsCorruption(t, New()) }
func TestCompresses(t *testing.T) { codectest.RunCompressesRedundantData(t, New(), 1.5) }
func BenchmarkCodec(b *testing.B) { codectest.RunBench(b, New()) }

func TestLongMatchEncoding(t *testing.T) {
	// A run long enough to need the extended-length form (>9 match bytes).
	src := bytes.Repeat([]byte{'x'}, 500)
	c := New()
	comp := c.Compress(src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("run of 500 compressed to %d bytes; expected much smaller", len(comp))
	}
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestMaxOffsetBoundary(t *testing.T) {
	// Two identical 16-byte blocks separated by exactly maxOff-16 bytes of
	// unique filler: the second must still round-trip whether or not the
	// encoder chooses to reference the first.
	pat := []byte("0123456789abcdef")
	filler := make([]byte, maxOff-len(pat))
	for i := range filler {
		filler[i] = byte(37*i + 11)
	}
	src := append(append(append([]byte{}, pat...), filler...), pat...)
	c := New()
	got, err := c.Decompress(c.Compress(src), len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed at offset boundary: %v", err)
	}
}

func TestDecompressRejectsBadOffset(t *testing.T) {
	// ctrl byte encodes a back reference beyond the start of output.
	bad := []byte{0x20 | 0x1f, 0xff} // len 3, offset 0x1fff+1
	if _, err := New().Decompress(bad, 100); err == nil {
		t.Fatal("expected error for reference before start of output")
	}
}

func TestIncompressibleExpansionBounded(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i*197 + i>>3)
	}
	comp := New().Compress(src)
	// Worst case adds one control byte per 32 literals.
	if len(comp) > len(src)+len(src)/32+16 {
		t.Fatalf("expansion too large: %d for %d input", len(comp), len(src))
	}
}
