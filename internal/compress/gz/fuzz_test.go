package gz

import (
	"testing"

	"edc/internal/compress/codectest"
)

func FuzzDecompress(f *testing.F) { codectest.FuzzDecompress(f, New()) }
func FuzzRoundTrip(f *testing.F)  { codectest.FuzzRoundTrip(f, New()) }
