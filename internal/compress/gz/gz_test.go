package gz

import (
	"bytes"
	"testing"

	"edc/internal/compress/codectest"
)

func TestRoundTrip(t *testing.T)  { codectest.RunRoundTrip(t, New()) }
func TestQuick(t *testing.T)      { codectest.RunQuick(t, New()) }
func TestCorruption(t *testing.T) { codectest.RunRejectsCorruption(t, New()) }
func TestCompresses(t *testing.T) { codectest.RunCompressesRedundantData(t, New(), 2.2) }
func BenchmarkCodec(b *testing.B) { codectest.RunBench(b, New()) }

func TestLengthCodeTables(t *testing.T) {
	for l := 3; l <= 258; l++ {
		sym, ev, eb := lengthToCode(l)
		if sym < 257 || sym >= 257+len(lengthCodes) {
			t.Fatalf("length %d: bad symbol %d", l, sym)
		}
		base := lengthCodes[sym-257].base
		if base+ev != l {
			t.Fatalf("length %d: base %d + extra %d != l", l, base, ev)
		}
		if ev >= 1<<eb {
			t.Fatalf("length %d: extra value %d does not fit %d bits", l, ev, eb)
		}
	}
}

func TestDistCodeTables(t *testing.T) {
	for d := 1; d <= maxDist; d++ {
		sym, ev, eb := distToCode(d)
		if sym < 0 || sym >= numDist {
			t.Fatalf("dist %d: bad symbol %d", d, sym)
		}
		if distCodes[sym].base+ev != d {
			t.Fatalf("dist %d: base %d + extra %d != d", d, distCodes[sym].base, ev)
		}
		if ev >= 1<<eb {
			t.Fatalf("dist %d: extra value %d does not fit %d bits", d, ev, eb)
		}
	}
}

func TestMaxLengthMatch(t *testing.T) {
	// Runs much longer than maxMatch must be split into several matches.
	src := bytes.Repeat([]byte("ab"), 4000)
	c := New()
	got, err := c.Decompress(c.Compress(src), len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestFarDistance(t *testing.T) {
	// Matches near the maxDist boundary.
	pat := []byte("unique-pattern-here!")
	filler := make([]byte, maxDist-len(pat)-1)
	for i := range filler {
		filler[i] = byte(151*i + 7)
	}
	src := append(append(append([]byte{}, pat...), filler...), pat...)
	c := New()
	got, err := c.Decompress(c.Compress(src), len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("round trip failed near maxDist: %v", err)
	}
}

func TestBetterRatioThanLZFOnText(t *testing.T) {
	src := []byte(bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog; "), 200))
	gzOut := New().Compress(src)
	if len(gzOut) >= len(src)/3 {
		t.Fatalf("gz ratio too low: %d of %d", len(gzOut), len(src))
	}
}

func TestStoredBlockFallbackBoundsExpansion(t *testing.T) {
	// High-entropy input: the stored container caps expansion at 1 byte.
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte((i*197 + i>>3) ^ i<<2)
	}
	c := New()
	comp := c.Compress(src)
	if len(comp) > len(src)+1 {
		t.Fatalf("expansion %d bytes; stored fallback should cap at 1", len(comp)-len(src))
	}
	got, err := c.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("stored round trip failed: %v", err)
	}
}

func TestDecompressRejectsBadFormatByte(t *testing.T) {
	if _, err := New().Decompress([]byte{0x7f, 1, 2, 3}, 3); err == nil {
		t.Fatal("unknown format byte should fail")
	}
	if _, err := New().Decompress(nil, 0); err == nil {
		t.Fatal("empty input should fail")
	}
	// Stored block with wrong length.
	if _, err := New().Decompress([]byte{0x01, 'a'}, 5); err == nil {
		t.Fatal("stored length mismatch should fail")
	}
}
