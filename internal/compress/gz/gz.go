// Package gz implements a Gzip-class codec from scratch: greedy-lazy LZ77
// with hash-chain matching followed by canonical Huffman entropy coding
// over deflate-style literal/length and distance alphabets. It occupies
// the paper's middle ground — a noticeably better ratio than LZF/LZ4 at a
// noticeably lower speed (Fig. 2), and is the codec EDC selects during
// moderate-intensity periods.
//
// The container is one format byte then a single Huffman block:
//
//	0x00 [lit/len code lengths][dist code lengths][symbol stream ... EOB]
//	0x01 [raw bytes]   (stored: the Huffman form would have expanded)
//
// Code lengths are serialized with huffman.WriteLengths. The symbol
// stream uses the deflate alphabets: literals 0–255, end-of-block 256,
// length codes 257–284 (base+extra bits, match lengths 3–258) and 30
// distance codes (distances 1–32768).
package gz

import (
	"encoding/binary"
	"sync"

	"edc/internal/bitio"
	"edc/internal/compress"
	"edc/internal/huffman"
)

const (
	numLitLen  = 285 // 0..284
	numDist    = 30
	minMatch   = 3
	maxMatch   = 258
	maxDist    = 32768
	hashBits   = 15
	hashSize   = 1 << hashBits
	maxChain   = 48 // hash-chain search depth: ratio/speed knob
	niceLength = 96 // stop searching when a match this long is found
	eob        = 256
)

// lengthCodes[i] describes length code 257+i.
var lengthCodes = [28]struct {
	base  int
	extra uint
}{
	{3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}, {8, 0}, {9, 0}, {10, 0},
	{11, 1}, {13, 1}, {15, 1}, {17, 1},
	{19, 2}, {23, 2}, {27, 2}, {31, 2},
	{35, 3}, {43, 3}, {51, 3}, {59, 3},
	{67, 4}, {83, 4}, {99, 4}, {115, 4},
	{131, 5}, {163, 5}, {195, 5}, {227, 5},
}

// distCodes[i] describes distance code i.
var distCodes = [numDist]struct {
	base  int
	extra uint
}{
	{1, 0}, {2, 0}, {3, 0}, {4, 0},
	{5, 1}, {7, 1},
	{9, 2}, {13, 2},
	{17, 3}, {25, 3},
	{33, 4}, {49, 4},
	{65, 5}, {97, 5},
	{129, 6}, {193, 6},
	{257, 7}, {385, 7},
	{513, 8}, {769, 8},
	{1025, 9}, {1537, 9},
	{2049, 10}, {3073, 10},
	{4097, 11}, {6145, 11},
	{8193, 12}, {12289, 12},
	{16385, 13}, {24577, 13},
}

// lengthToCode maps a match length (3..258) to (symbol, extra value, bits).
func lengthToCode(l int) (sym, extraVal int, extraBits uint) {
	// Length 258 gets the top code in deflate; here codes cover 3..258 via
	// the table, with the last bucket {227,5} spanning 227..258.
	for i := len(lengthCodes) - 1; i >= 0; i-- {
		if l >= lengthCodes[i].base {
			return 257 + i, l - lengthCodes[i].base, lengthCodes[i].extra
		}
	}
	return 257, 0, 0
}

// distToCode maps a distance (1..32768) to (symbol, extra value, bits).
func distToCode(d int) (sym, extraVal int, extraBits uint) {
	for i := numDist - 1; i >= 0; i-- {
		if d >= distCodes[i].base {
			return i, d - distCodes[i].base, distCodes[i].extra
		}
	}
	return 0, 0, 0
}

// token is one LZ77 output item.
type token struct {
	lit  byte
	dist int32 // 0 ⇒ literal, otherwise match distance
	len  int32
}

// Codec is the gz codec. The zero value is ready to use.
type Codec struct{}

// New returns the gz codec.
func New() *Codec { return &Codec{} }

// Name implements compress.Codec.
func (*Codec) Name() string { return "gz" }

// Tag implements compress.Codec.
func (*Codec) Tag() compress.Tag { return compress.TagGZ }

func hash4(v uint32) uint32 { return (v * 2654435761) >> (32 - hashBits) }

// parseState is the per-compression scratch: the hash-chain arrays, the
// token buffer, and the Huffman frequency tables. Pooling it removes the
// dominant allocations from the Compress hot path (the event-loop replay
// compresses thousands of runs per trace); a sync.Pool keeps the codec
// safe for concurrent use by parallel replay workers.
type parseState struct {
	head     [hashSize]int32
	prev     []int32
	tokens   []token
	litFreq  [numLitLen]int64
	distFreq [numDist]int64

	// Entropy-coding scratch: the code-length builder, the length
	// vectors, and the canonical encoders are all reused across
	// compressions, so the entropy stage allocates nothing in steady
	// state.
	builder  huffman.Builder
	litLens  []uint8
	distLens []uint8
	litEnc   huffman.Encoder
	distEnc  huffman.Encoder
}

var statePool = sync.Pool{New: func() interface{} { return new(parseState) }}

// decState is the per-decompression scratch: the bit reader, the parsed
// code-length vectors, and the two canonical decoders (each owning its
// lookup table). Pooling it strips every per-call allocation from
// Decompress except the output itself; a sync.Pool keeps the codec safe
// for concurrent use by parallel replay workers.
type decState struct {
	r        bitio.Reader
	litLens  []uint8
	distLens []uint8
	litDec   huffman.Decoder
	distDec  huffman.Decoder
}

var decPool = sync.Pool{New: func() interface{} { return new(decState) }}

// parse runs hash-chain LZ77 with one-token lazy evaluation, reusing the
// state's scratch buffers. The returned token slice aliases st.tokens.
func (st *parseState) parse(src []byte) []token {
	tokens := st.tokens[:0]
	if len(src) == 0 {
		return tokens
	}
	head := &st.head
	if cap(st.prev) < len(src) {
		st.prev = make([]int32, len(src))
	}
	// Stale prev entries are unreachable: a position is only chained
	// from head (reset below) after insert overwrites its prev slot.
	prev := st.prev[:len(src)]
	for i := range head {
		head[i] = -1
	}
	insert := func(i int) {
		if i+4 > len(src) {
			return
		}
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		prev[i] = head[h]
		head[h] = int32(i)
	}
	// bestMatch finds the longest match for position i.
	bestMatch := func(i int) (dist, length int) {
		if i+minMatch > len(src) || i+4 > len(src) {
			return 0, 0
		}
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		cand := head[h]
		limit := len(src) - i
		if limit > maxMatch {
			limit = maxMatch
		}
		chain := maxChain
		for cand >= 0 && chain > 0 {
			c := int(cand)
			if i-c > maxDist {
				break
			}
			if src[c+length] == src[i+length] { // quick reject on current best
				l := 0
				for l < limit && src[c+l] == src[i+l] {
					l++
				}
				if l > length {
					length = l
					dist = i - c
					if l >= niceLength || l >= limit {
						break
					}
				}
			}
			cand = prev[c]
			chain--
		}
		if length < minMatch {
			return 0, 0
		}
		return dist, length
	}
	i := 0
	for i < len(src) {
		dist, length := bestMatch(i)
		if length >= minMatch {
			// Lazy: if the next position has a strictly better match, emit
			// a literal instead and take the longer match next round.
			if length < niceLength && i+1 < len(src) {
				insert(i)
				d2, l2 := bestMatch(i + 1)
				if l2 > length+1 {
					tokens = append(tokens, token{lit: src[i]})
					i++
					dist, length = d2, l2
				}
			} else {
				insert(i)
			}
			tokens = append(tokens, token{dist: int32(dist), len: int32(length)})
			for j := i + 1; j < i+length; j++ {
				insert(j)
			}
			i += length
			continue
		}
		insert(i)
		tokens = append(tokens, token{lit: src[i]})
		i++
	}
	st.tokens = tokens
	return tokens
}

// storedMagic marks a stored (uncompressed) container: emitted when the
// Huffman block would expand the input, bounding worst-case growth to
// one byte.
const storedMagic = 0x01

// compressedMagic marks a normal Huffman container.
const compressedMagic = 0x00

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) []byte {
	return c.AppendCompress(make([]byte, 0, len(src)/2+64), src)
}

// AppendCompress implements compress.Appender: it appends the
// compressed form of src to dst (growing it as needed) and returns the
// extended slice. Combined with the pooled parse scratch this makes the
// replay hot path allocation-free in steady state.
func (*Codec) AppendCompress(dst, src []byte) []byte {
	mark := len(dst)
	out := appendHuffman(dst, src)
	if len(out)-mark >= len(src)+1 {
		// The Huffman form expanded: emit the stored container instead,
		// overwriting it in place.
		out = append(out[:mark], storedMagic)
		return append(out, src...)
	}
	return out
}

// appendHuffman appends the Huffman container (with its leading format
// byte) to dst.
func appendHuffman(dst, src []byte) []byte {
	st := statePool.Get().(*parseState)
	defer statePool.Put(st)
	tokens := st.parse(src)

	litFreq := st.litFreq[:]
	distFreq := st.distFreq[:]
	for i := range litFreq {
		litFreq[i] = 0
	}
	for i := range distFreq {
		distFreq[i] = 0
	}
	litFreq[eob] = 1
	for _, t := range tokens {
		if t.dist == 0 {
			litFreq[t.lit]++
			continue
		}
		s, _, _ := lengthToCode(int(t.len))
		litFreq[s]++
		ds, _, _ := distToCode(int(t.dist))
		distFreq[ds]++
	}
	litLens, err := st.builder.Build(st.litLens, litFreq, huffman.MaxBits)
	if err != nil {
		panic("gz: " + err.Error()) // unreachable: valid freqs by construction
	}
	st.litLens = litLens
	distLens, err := st.builder.Build(st.distLens, distFreq, huffman.MaxBits)
	if err != nil {
		panic("gz: " + err.Error())
	}
	st.distLens = distLens
	if err := st.litEnc.Reset(litLens); err != nil {
		panic("gz: " + err.Error())
	}
	litEnc := &st.litEnc
	var distEnc *huffman.Encoder
	hasDist := false
	for _, l := range distLens {
		if l > 0 {
			hasDist = true
			break
		}
	}
	if hasDist {
		if err := st.distEnc.Reset(distLens); err != nil {
			panic("gz: " + err.Error())
		}
		distEnc = &st.distEnc
	}

	var w bitio.Writer
	w.ResetBuf(dst)
	w.WriteBits(compressedMagic, 8)
	huffman.WriteLengths(&w, litLens)
	huffman.WriteLengths(&w, distLens)
	for _, t := range tokens {
		if t.dist == 0 {
			_ = litEnc.Encode(&w, int(t.lit))
			continue
		}
		s, ev, eb := lengthToCode(int(t.len))
		_ = litEnc.Encode(&w, s)
		if eb > 0 {
			w.WriteBits(uint64(ev), eb)
		}
		ds, dev, deb := distToCode(int(t.dist))
		_ = distEnc.Encode(&w, ds)
		if deb > 0 {
			w.WriteBits(uint64(dev), deb)
		}
	}
	_ = litEnc.Encode(&w, eob)
	return w.Bytes()
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(src []byte, origLen int) ([]byte, error) {
	out, err := c.DecompressAppend(make([]byte, 0, origLen), src, origLen)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressAppend implements compress.DecompressAppender: it appends
// the decompressed form of src to dst (growing it as needed) and returns
// the extended slice. Combined with the pooled decode scratch this makes
// the read hot path allocation-free in steady state.
func (*Codec) DecompressAppend(dst, src []byte, origLen int) ([]byte, error) {
	if len(src) == 0 {
		return dst, compress.ErrCorrupt
	}
	if src[0] == storedMagic {
		if len(src)-1 != origLen {
			return dst, compress.ErrSizeMismatch
		}
		return append(dst, src[1:]...), nil
	}
	if src[0] != compressedMagic {
		return dst, compress.ErrCorrupt
	}
	st := decPool.Get().(*decState)
	defer decPool.Put(st)
	r := &st.r
	r.Reset(src)
	if _, err := r.ReadBits(8); err != nil {
		return dst, compress.ErrCorrupt
	}
	litLens, err := huffman.ReadLengthsInto(r, st.litLens, numLitLen)
	if err != nil {
		return dst, compress.ErrCorrupt
	}
	st.litLens = litLens
	distLens, err := huffman.ReadLengthsInto(r, st.distLens, numDist)
	if err != nil {
		return dst, compress.ErrCorrupt
	}
	st.distLens = distLens
	if err := st.litDec.Reset(litLens); err != nil {
		return dst, compress.ErrCorrupt
	}
	litDec := &st.litDec
	var distDec *huffman.Decoder
	hasDist := false
	for _, l := range distLens {
		if l > 0 {
			hasDist = true
			break
		}
	}
	if hasDist {
		if err := st.distDec.Reset(distLens); err != nil {
			return dst, compress.ErrCorrupt
		}
		distDec = &st.distDec
	}
	base := len(dst)
	out := dst
	for {
		sym, err := litDec.Decode(r)
		if err != nil {
			return dst, compress.ErrCorrupt
		}
		switch {
		case sym < 256:
			if len(out)-base+1 > origLen {
				return dst, compress.ErrCorrupt
			}
			out = append(out, byte(sym))
		case sym == eob:
			if len(out)-base != origLen {
				return dst, compress.ErrSizeMismatch
			}
			return out, nil
		default:
			li := sym - 257
			if li >= len(lengthCodes) {
				return dst, compress.ErrCorrupt
			}
			length := lengthCodes[li].base
			if eb := lengthCodes[li].extra; eb > 0 {
				v, err := r.ReadBits(eb)
				if err != nil {
					return dst, compress.ErrCorrupt
				}
				length += int(v)
			}
			if distDec == nil {
				return dst, compress.ErrCorrupt
			}
			ds, err := distDec.Decode(r)
			if err != nil || ds >= numDist {
				return dst, compress.ErrCorrupt
			}
			dist := distCodes[ds].base
			if eb := distCodes[ds].extra; eb > 0 {
				v, err := r.ReadBits(eb)
				if err != nil {
					return dst, compress.ErrCorrupt
				}
				dist += int(v)
			}
			ref := len(out) - dist
			if ref < base || len(out)-base+length > origLen {
				return dst, compress.ErrCorrupt
			}
			for k := 0; k < length; k++ {
				out = append(out, out[ref+k])
			}
		}
	}
}

func init() {
	compress.MustRegister(New())
}
