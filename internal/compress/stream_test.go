package compress

import (
	"bytes"
	"io"
	"testing"
)

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, None)
	blocks := [][]byte{
		[]byte("first block"),
		{},
		bytes.Repeat([]byte{0xaa}, 5000),
	}
	for _, b := range blocks {
		if err := fw.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Blocks() != 3 {
		t.Fatalf("blocks = %d", fw.Blocks())
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()), NewRegistry())
	for i, want := range blocks {
		got, err := fr.ReadBlock()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	if _, err := fr.ReadBlock(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestVerifyStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, None)
	for i := 0; i < 5; i++ {
		if err := fw.WriteBlock([]byte("payload payload payload")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := VerifyStream(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 5 {
		t.Fatalf("verify = %d, %v", n, err)
	}
	// Flip a payload bit: verification must fail with a frame count of
	// the frames before the damage.
	data := buf.Bytes()
	data[len(data)-1] ^= 1
	n, err = VerifyStream(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corruption not detected")
	}
	if n != 4 {
		t.Fatalf("valid frames before corruption = %d; want 4", n)
	}
}

func TestFrameStreamTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, None)
	if err := fw.WriteBlock(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 10, len(data) - 1} {
		fr := NewFrameReader(bytes.NewReader(data[:cut]), NewRegistry())
		if _, err := fr.ReadBlock(); err == nil {
			t.Fatalf("cut at %d: expected error", cut)
		}
	}
}

func TestFrameStreamRejectsHugeLength(t *testing.T) {
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	fr := NewFrameReader(bytes.NewReader(bad), NewRegistry())
	if _, err := fr.ReadBlock(); err == nil {
		t.Fatal("expected error for absurd frame length")
	}
	if _, err := VerifyStream(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected error for absurd frame length")
	}
}
