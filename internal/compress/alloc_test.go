package compress_test

import (
	"testing"

	"edc/internal/compress"
	"edc/internal/datagen"
	"edc/internal/race"
)

// TestCompressAllocs pins the steady-state allocation count of the two
// recycled-buffer hot paths for every codec: AppendCompress must not
// allocate at all once its scratch pools are warm, and DecompressAppend
// must not allocate when the destination is pre-sized. A regression here
// re-introduces per-request garbage into the replay pipeline, which is
// exactly what the pooled-scratch design exists to prevent.
func TestCompressAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector perturbs allocation counts (sync.Pool puts are dropped at random)")
	}
	gen := datagen.New(datagen.Enterprise(), 7)
	src := gen.Block(0, 64<<10, 0)
	reg := compress.Default()
	for _, name := range []string{"lzf", "lz4", "gz", "bwz"} {
		c, err := reg.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := c.(compress.Appender)
		da := c.(compress.DecompressAppender)
		comp := c.Compress(src)

		t.Run(name+"/AppendCompress", func(t *testing.T) {
			buf := a.AppendCompress(nil, src) // warm pools and size the buffer
			allocs := testing.AllocsPerRun(10, func() {
				buf = a.AppendCompress(buf[:0], src)
			})
			if allocs > 0 {
				t.Errorf("AppendCompress: %v allocs/op, want 0", allocs)
			}
		})
		t.Run(name+"/DecompressAppend", func(t *testing.T) {
			buf, err := da.DecompressAppend(nil, comp, len(src))
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				buf, err = da.DecompressAppend(buf[:0], comp, len(src))
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("DecompressAppend: %v allocs/op, want 0", allocs)
			}
		})
	}
}
