// Package compress defines the common block-codec contract shared by the
// EDC compression engine and the four concrete codec families (lzf, lz4x,
// gz, bwz), together with the 3-bit on-flash tag registry from the paper
// (Fig. 5: the Tag field records which algorithm compressed a block, with
// "000" meaning no compression) and a small self-describing frame format
// used by tools and tests.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Tag is the 3-bit per-block compression-algorithm identifier stored in
// the EDC mapping metadata.
type Tag uint8

// Well-known tags. TagNone is fixed to 0 per the paper ("000" indicates
// no compression).
const (
	TagNone Tag = 0
	TagLZF  Tag = 1
	TagLZ4  Tag = 2
	TagGZ   Tag = 3
	TagBWZ  Tag = 4

	// MaxTag is the largest representable tag (3 bits).
	MaxTag Tag = 7
)

// Errors shared by codec implementations.
var (
	ErrCorrupt      = errors.New("compress: corrupt input")
	ErrUnknownTag   = errors.New("compress: unknown codec tag")
	ErrTagInUse     = errors.New("compress: tag already registered")
	ErrSizeMismatch = errors.New("compress: decompressed size mismatch")
)

// Codec is a block compressor. Implementations must be safe for
// concurrent use by multiple goroutines.
type Codec interface {
	// Name returns a short lowercase identifier ("lzf", "gz", ...).
	Name() string
	// Tag returns the codec's 3-bit on-flash tag.
	Tag() Tag
	// Compress returns the compressed form of src as a fresh slice.
	// The output may be larger than the input for incompressible data;
	// callers (the EDC engine) decide whether to keep it.
	Compress(src []byte) []byte
	// Decompress reverses Compress. origLen is the exact decompressed
	// length recorded by the block layer; implementations use it to size
	// the output and to validate the stream.
	Decompress(src []byte, origLen int) ([]byte, error)
}

// Appender is an optional Codec extension for allocation-conscious hot
// paths: AppendCompress appends the compressed form of src to dst
// (usually a pooled buffer passed as buf[:0]) and returns the extended
// slice, which may be a reallocation of dst. Output bytes are identical
// to Compress. All codecs in this repository implement it.
type Appender interface {
	AppendCompress(dst, src []byte) []byte
}

// AppendCompress compresses src with c, appending to dst when c
// implements Appender and falling back to Compress (plus a copy into
// dst) otherwise. The result is byte-identical to c.Compress(src).
func AppendCompress(c Codec, dst, src []byte) []byte {
	if a, ok := c.(Appender); ok {
		return a.AppendCompress(dst, src)
	}
	return append(dst, c.Compress(src)...)
}

// DecompressAppender is the read-side twin of Appender: DecompressAppend
// appends the decompressed form of src to dst (usually a pooled buffer
// passed as buf[:0]) and returns the extended slice, which may be a
// reallocation of dst. Appended bytes are identical to Decompress, and
// the same stream validation applies. All codecs in this repository
// implement it with pooled decode scratch, so a steady-state
// decompression allocates nothing beyond (at most) one growth of dst.
type DecompressAppender interface {
	DecompressAppend(dst, src []byte, origLen int) ([]byte, error)
}

// DecompressAppend decompresses src with c, appending to dst when c
// implements DecompressAppender and falling back to Decompress (plus a
// copy into dst) otherwise. On error dst is returned unextended.
func DecompressAppend(c Codec, dst, src []byte, origLen int) ([]byte, error) {
	if da, ok := c.(DecompressAppender); ok {
		return da.DecompressAppend(dst, src, origLen)
	}
	out, err := c.Decompress(src, origLen)
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

// none is the write-through pseudo-codec (tag 0).
type none struct{}

func (none) Name() string { return "none" }
func (none) Tag() Tag     { return TagNone }
func (none) Compress(src []byte) []byte {
	out := make([]byte, len(src))
	copy(out, src)
	return out
}
func (none) AppendCompress(dst, src []byte) []byte { return append(dst, src...) }
func (none) Decompress(src []byte, origLen int) ([]byte, error) {
	if len(src) != origLen {
		return nil, ErrSizeMismatch
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}
func (none) DecompressAppend(dst, src []byte, origLen int) ([]byte, error) {
	if len(src) != origLen {
		return dst, ErrSizeMismatch
	}
	return append(dst, src...), nil
}

// None is the shared write-through codec instance.
var None Codec = none{}

// Registry maps tags to codecs. The package-level default registry is
// populated by the codec packages' init functions (and always contains
// None); independent registries can be created for tests.
type Registry struct {
	mu     sync.RWMutex
	byTag  [MaxTag + 1]Codec
	byName map[string]Codec
}

// NewRegistry returns a registry pre-populated with the None codec.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]Codec)}
	r.byTag[TagNone] = None
	r.byName[None.Name()] = None
	return r
}

// Register adds c to the registry. It fails if the tag or name is taken.
func (r *Registry) Register(c Codec) error {
	if c.Tag() > MaxTag {
		return fmt.Errorf("compress: tag %d exceeds 3 bits", c.Tag())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byTag[c.Tag()] != nil {
		return fmt.Errorf("%w: tag %d", ErrTagInUse, c.Tag())
	}
	if _, ok := r.byName[c.Name()]; ok {
		return fmt.Errorf("%w: name %q", ErrTagInUse, c.Name())
	}
	r.byTag[c.Tag()] = c
	r.byName[c.Name()] = c
	return nil
}

// ByTag looks a codec up by tag.
func (r *Registry) ByTag(t Tag) (Codec, error) {
	if t > MaxTag {
		return nil, ErrUnknownTag
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.byTag[t]
	if c == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTag, t)
	}
	return c, nil
}

// ByName looks a codec up by name.
func (r *Registry) ByName(name string) (Codec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTag, name)
	}
	return c, nil
}

// Names returns the registered codec names (unspecified order).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

// defaultRegistry is populated by codec package init functions.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// MustRegister registers c in the default registry and panics on
// conflict. It is intended for codec package init functions.
func MustRegister(c Codec) {
	if err := defaultRegistry.Register(c); err != nil {
		panic(err)
	}
}

// Ratio returns origLen/compLen as defined in the paper (original size
// divided by compressed size; higher is better). A non-positive compLen
// yields 0.
func Ratio(origLen, compLen int) float64 {
	if compLen <= 0 {
		return 0
	}
	return float64(origLen) / float64(compLen)
}

// Frame format
//
// A frame is a self-describing compressed blob used by the CLI tools and
// round-trip tests (the block store itself keeps tag/size in its mapping
// table instead and stores raw codec output):
//
//	offset size  field
//	0      4     magic "EDCF"
//	4      1     tag
//	5      4     original length (LE)
//	9      4     payload length (LE)
//	13     4     CRC32 (IEEE) of payload
//	17     n     payload
const (
	frameMagic      = "EDCF"
	frameHeaderSize = 17
)

// EncodeFrame compresses src with c and wraps it in a frame.
func EncodeFrame(c Codec, src []byte) []byte {
	payload := c.Compress(src)
	out := make([]byte, frameHeaderSize+len(payload))
	copy(out, frameMagic)
	out[4] = byte(c.Tag())
	binary.LittleEndian.PutUint32(out[5:], uint32(len(src)))
	binary.LittleEndian.PutUint32(out[9:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[13:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeaderSize:], payload)
	return out
}

// DecodeFrame validates and decompresses a frame using reg.
func DecodeFrame(reg *Registry, frame []byte) ([]byte, error) {
	if len(frame) < frameHeaderSize || string(frame[:4]) != frameMagic {
		return nil, ErrCorrupt
	}
	tag := Tag(frame[4])
	origLen := int(binary.LittleEndian.Uint32(frame[5:]))
	payLen := int(binary.LittleEndian.Uint32(frame[9:]))
	sum := binary.LittleEndian.Uint32(frame[13:])
	if payLen != len(frame)-frameHeaderSize {
		return nil, ErrCorrupt
	}
	payload := frame[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum", ErrCorrupt)
	}
	c, err := reg.ByTag(tag)
	if err != nil {
		return nil, err
	}
	out, err := c.Decompress(payload, origLen)
	if err != nil {
		return nil, err
	}
	if len(out) != origLen {
		return nil, ErrSizeMismatch
	}
	return out, nil
}
