package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edc/internal/bitio"
)

func roundTrip(t *testing.T, freqs []int64, symbols []int) {
	t.Helper()
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatalf("BuildLengths: %v", err)
	}
	enc, err := NewEncoderFromLengths(lengths)
	if err != nil {
		t.Fatalf("NewEncoderFromLengths: %v", err)
	}
	dec, err := NewDecoderFromLengths(lengths)
	if err != nil {
		t.Fatalf("NewDecoderFromLengths: %v", err)
	}
	w := bitio.NewWriter(len(symbols))
	for _, s := range symbols {
		if err := enc.Encode(w, s); err != nil {
			t.Fatalf("Encode(%d): %v", s, err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range symbols {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("Decode at %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("Decode at %d = %d; want %d", i, got, want)
		}
	}
}

func TestRoundTripTwoSymbols(t *testing.T) {
	freqs := []int64{5, 3}
	roundTrip(t, freqs, []int{0, 1, 1, 0, 0, 0, 1})
}

func TestRoundTripSingleSymbol(t *testing.T) {
	freqs := []int64{0, 7, 0}
	roundTrip(t, freqs, []int{1, 1, 1, 1})
}

func TestRoundTripSkewedAlphabet(t *testing.T) {
	freqs := make([]int64, 256)
	// Exponentially skewed: forces a deep tree that must be length-limited.
	f := int64(1)
	for i := 0; i < 256; i++ {
		freqs[i] = f
		if i%8 == 7 {
			f *= 2
		}
	}
	syms := make([]int, 0, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		syms = append(syms, rng.Intn(256))
	}
	roundTrip(t, freqs, syms)
}

func TestLengthLimitRespected(t *testing.T) {
	// Fibonacci-like frequencies produce maximally deep Huffman trees.
	freqs := make([]int64, 40)
	a, b := int64(1), int64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	for _, maxBits := range []int{8, 10, 15} {
		lengths, err := BuildLengths(freqs, maxBits)
		if err != nil {
			t.Fatalf("BuildLengths(max=%d): %v", maxBits, err)
		}
		k := 0
		for _, l := range lengths {
			if int(l) > maxBits {
				t.Fatalf("length %d exceeds limit %d", l, maxBits)
			}
			if l > 0 {
				k += 1 << uint(MaxBits-int(l))
			}
		}
		if k != 1<<MaxBits {
			t.Fatalf("max=%d: Kraft sum %d != %d (code not complete)", maxBits, k, 1<<MaxBits)
		}
		if _, err := NewDecoderFromLengths(lengths); err != nil {
			t.Fatalf("decoder rejects limited lengths: %v", err)
		}
	}
}

func TestEmptyAlphabet(t *testing.T) {
	lengths, err := BuildLengths(make([]int64, 10), MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l != 0 {
			t.Fatalf("expected all-zero lengths, got %v", lengths)
		}
	}
}

func TestEncodeUnknownSymbolFails(t *testing.T) {
	lengths, _ := BuildLengths([]int64{1, 1, 0}, MaxBits)
	enc, err := NewEncoderFromLengths(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(4)
	if err := enc.Encode(w, 2); err == nil {
		t.Fatal("expected error encoding unused symbol")
	}
	if err := enc.Encode(w, 99); err == nil {
		t.Fatal("expected error encoding out-of-range symbol")
	}
}

func TestInvalidLengthsRejected(t *testing.T) {
	// Over-subscribed: three codes of length 1.
	if _, err := NewDecoderFromLengths([]uint8{1, 1, 1}); err == nil {
		t.Fatal("expected error for over-subscribed code")
	}
	// Incomplete: single length-2 code.
	if _, err := NewDecoderFromLengths([]uint8{2}); err == nil {
		t.Fatal("expected error for incomplete code")
	}
}

func TestWriteReadLengths(t *testing.T) {
	cases := [][]uint8{
		{},
		{1, 1},
		{0, 0, 0, 0, 5, 0, 3, 15, 0},
		make([]uint8, 300), // long zero run
	}
	cases[3][299] = 7
	for i, lens := range cases {
		w := bitio.NewWriter(64)
		WriteLengths(w, lens)
		r := bitio.NewReader(w.Bytes())
		got, err := ReadLengths(r, len(lens))
		if err != nil {
			t.Fatalf("case %d: ReadLengths: %v", i, err)
		}
		for j := range lens {
			if got[j] != lens[j] {
				t.Fatalf("case %d: lengths[%d] = %d; want %d", i, j, got[j], lens[j])
			}
		}
	}
}

// Property: encode/decode round-trips for random frequency tables.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		freqs := make([]int64, n)
		for i := range freqs {
			if rng.Intn(4) > 0 { // ~25% of symbols unused
				freqs[i] = int64(rng.Intn(10000)) + 1
			}
		}
		present := []int{}
		for i, fq := range freqs {
			if fq > 0 {
				present = append(present, i)
			}
		}
		if len(present) == 0 {
			return true
		}
		syms := make([]int, 256)
		for i := range syms {
			syms[i] = present[rng.Intn(len(present))]
		}
		lengths, err := BuildLengths(freqs, MaxBits)
		if err != nil {
			return false
		}
		enc, err := NewEncoderFromLengths(lengths)
		if err != nil {
			return false
		}
		dec, err := NewDecoderFromLengths(lengths)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(512)
		for _, s := range syms {
			if err := enc.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		for _, want := range syms {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: compressed size is never worse than a flat fixed-width code by
// more than the table overhead would explain (sanity on optimality).
func TestHuffmanBeatsFlatCodeOnSkewedData(t *testing.T) {
	freqs := make([]int64, 16)
	freqs[0] = 1000
	for i := 1; i < 16; i++ {
		freqs[i] = 1
	}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, fq := range freqs {
		total += fq * int64(lengths[i])
	}
	flat := int64(1015 * 4)
	if total >= flat {
		t.Fatalf("huffman bits %d not better than flat %d", total, flat)
	}
}

func BenchmarkEncode(b *testing.B) {
	freqs := make([]int64, 256)
	rng := rand.New(rand.NewSource(7))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000)) + 1
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	enc, _ := NewEncoderFromLengths(lengths)
	w := bitio.NewWriter(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%65536 == 0 {
			w.Reset()
		}
		_ = enc.Encode(w, i&0xff)
	}
}

func BenchmarkDecode(b *testing.B) {
	freqs := make([]int64, 256)
	rng := rand.New(rand.NewSource(7))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000)) + 1
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	enc, _ := NewEncoderFromLengths(lengths)
	dec, _ := NewDecoderFromLengths(lengths)
	w := bitio.NewWriter(1 << 16)
	const n = 8192
	for i := 0; i < n; i++ {
		_ = enc.Encode(w, i&0xff)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := bitio.NewReader(data)
	cnt := 0
	for i := 0; i < b.N; i++ {
		if cnt == n {
			r = bitio.NewReader(data)
			cnt = 0
		}
		if _, err := dec.Decode(r); err != nil {
			b.Fatal(err)
		}
		cnt++
	}
}
