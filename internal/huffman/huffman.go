// Package huffman implements length-limited canonical Huffman coding over
// byte-oriented alphabets. It is shared by the gz (LZ77+Huffman) and bwz
// (BWT+MTF+Huffman) codecs.
//
// Codes are canonical: symbols are assigned consecutive code values in
// (length, symbol) order, so a code table is fully described by the code
// length of each symbol. Encoded code words are written LSB-first after
// bit reversal so they can be decoded with the LSB-first bitio readers.
package huffman

import (
	"errors"
	"fmt"

	"edc/internal/bitio"
)

// MaxBits is the maximum supported code length.
const MaxBits = 15

var (
	// ErrInvalidLengths reports a code-length vector that does not
	// describe a valid (complete or empty) prefix code.
	ErrInvalidLengths = errors.New("huffman: invalid code lengths")
	// ErrBadSymbol reports an attempt to encode a symbol with no code.
	ErrBadSymbol = errors.New("huffman: symbol has no code")
)

// Code describes one symbol's canonical code.
type Code struct {
	Bits uint16 // code value, bit-reversed for LSB-first emission
	Len  uint8  // code length in bits; 0 means the symbol is unused
}

// Encoder maps symbols to canonical codes.
type Encoder struct {
	codes []Code
}

// node is an internal tree node used during construction. Nodes live in
// one flat slice and reference children by index, so building a tree
// costs two slice allocations instead of one per node. seq breaks
// frequency ties deterministically: leaves get 0..n-1 in symbol order,
// merged nodes continue the count, exactly as the original
// pointer-per-node construction did, so the resulting code lengths are
// unchanged.
type node struct {
	freq   int64
	symbol int32 // -1 for internal nodes
	left   int32
	right  int32
	seq    int32
}

// BuildLengths computes length-limited code lengths (<= maxBits) for the
// given symbol frequencies. Symbols with zero frequency get length 0.
// If only one symbol has nonzero frequency it is assigned length 1 so the
// code remains decodable. Hot paths that build many codes should hold a
// Builder and call its Build method instead, which reuses the tree
// scratch across calls.
func BuildLengths(freqs []int64, maxBits int) ([]uint8, error) {
	var b Builder
	return b.Build(nil, freqs, maxBits)
}

// Builder computes code lengths like BuildLengths but keeps the tree
// construction scratch (the node arena and the index heap) between
// calls, so steady-state builds allocate only when the caller passes a
// too-small dst. The zero value is ready to use. Not safe for
// concurrent use; pool Builders alongside the codec scratch instead.
type Builder struct {
	nodes []node
	hp    []int32
}

// Build computes length-limited code lengths (<= maxBits) for freqs into
// dst, growing it as needed (dst may be nil), and returns the slice.
// The result is identical to BuildLengths for the same inputs.
func (b *Builder) Build(dst []uint8, freqs []int64, maxBits int) ([]uint8, error) {
	if maxBits <= 0 || maxBits > MaxBits {
		return nil, fmt.Errorf("huffman: maxBits %d out of range", maxBits)
	}
	if cap(dst) < len(freqs) {
		dst = make([]uint8, len(freqs))
	}
	lengths := dst[:len(freqs)]
	for i := range lengths {
		lengths[i] = 0
	}
	n := 0
	for _, f := range freqs {
		if f > 0 {
			n++
		}
	}
	switch n {
	case 0:
		return lengths, nil
	case 1:
		for sym, f := range freqs {
			if f > 0 {
				lengths[sym] = 1
			}
		}
		return lengths, nil
	}
	if cap(b.nodes) < 2*n-1 {
		b.nodes = make([]node, 0, 2*n-1)
	}
	if cap(b.hp) < n {
		b.hp = make([]int32, 0, n)
	}
	nodes := b.nodes[:0]
	hp := b.hp[:0]
	seq := int32(0)
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{freq: f, symbol: int32(sym), left: -1, right: -1, seq: seq})
			hp = append(hp, seq) // leaf index == seq
			seq++
		}
	}
	// Hand-rolled min-heap of node indices. The (freq, seq) comparison is
	// a total order, so the pop sequence — and therefore the merge order
	// and final code lengths — does not depend on heap internals.
	less := func(a, b int32) bool {
		if nodes[a].freq != nodes[b].freq {
			return nodes[a].freq < nodes[b].freq
		}
		return nodes[a].seq < nodes[b].seq
	}
	down := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(hp) {
				return
			}
			j := l
			if r := l + 1; r < len(hp) && less(hp[r], hp[l]) {
				j = r
			}
			if !less(hp[j], hp[i]) {
				return
			}
			hp[i], hp[j] = hp[j], hp[i]
			i = j
		}
	}
	for i := len(hp)/2 - 1; i >= 0; i-- {
		down(i)
	}
	pop := func() int32 {
		min := hp[0]
		last := len(hp) - 1
		hp[0] = hp[last]
		hp = hp[:last]
		down(0)
		return min
	}
	push := func(x int32) {
		hp = append(hp, x)
		for i := len(hp) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(hp[i], hp[parent]) {
				break
			}
			hp[i], hp[parent] = hp[parent], hp[i]
			i = parent
		}
	}
	for len(hp) > 1 {
		x := pop()
		y := pop()
		nodes = append(nodes, node{freq: nodes[x].freq + nodes[y].freq, symbol: -1, left: x, right: y, seq: seq})
		push(int32(len(nodes) - 1))
		seq++
	}
	assignDepths(nodes, hp[0], 0, lengths)
	limitLengths(lengths, maxBits)
	b.nodes = nodes[:0]
	b.hp = hp[:0]
	return lengths, nil
}

func assignDepths(nodes []node, i int32, depth uint8, lengths []uint8) {
	nd := &nodes[i]
	if nd.symbol >= 0 {
		if depth == 0 {
			depth = 1
		}
		lengths[nd.symbol] = depth
		return
	}
	assignDepths(nodes, nd.left, depth+1, lengths)
	assignDepths(nodes, nd.right, depth+1, lengths)
}

// limitLengths rebalances a code-length vector so no length exceeds
// maxBits, using the classic Kraft-sum repair: overflowing codes are
// clamped, then lengths are adjusted until sum(2^-len) == 1.
func limitLengths(lengths []uint8, maxBits int) {
	overflow := false
	for _, l := range lengths {
		if int(l) > maxBits {
			overflow = true
			break
		}
	}
	if !overflow {
		return
	}
	// Count codes per length, clamping overlong codes (zlib-style repair:
	// each overflowing leaf is provisionally counted at maxBits, then leaf
	// pairs are rebalanced by moving an interior leaf one level down).
	var counts [MaxBits + 2]int
	over := 0
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxBits {
			over++
			lengths[i] = uint8(maxBits)
		}
		counts[lengths[i]]++
	}
	for over > 0 {
		bits := maxBits - 1
		for counts[bits] == 0 {
			bits--
		}
		counts[bits]--      // move one leaf down the tree
		counts[bits+1] += 2 // move one overflow item as its brother
		counts[maxBits]--
		over -= 2
	}
	// Exact fix-up: force the Kraft sum (in units of 2^-maxBits) to be
	// exactly full by promoting/demoting codes at the deepest level, one
	// unit at a time.
	kraft := func() int {
		k := 0
		for l := 1; l <= maxBits; l++ {
			k += counts[l] << uint(maxBits-l)
		}
		return k
	}
	full := 1 << uint(maxBits)
	for k := kraft(); k != full; k = kraft() {
		if k < full && counts[maxBits] > 0 {
			counts[maxBits]--
			counts[maxBits-1]++ // promote: +1 unit
		} else if k > full && counts[maxBits-1] > 0 {
			counts[maxBits-1]--
			counts[maxBits]++ // demote: -1 unit
		} else if k > full {
			bits := maxBits - 2
			for bits > 0 && counts[bits] == 0 {
				bits--
			}
			counts[bits]--
			counts[bits+1]++
		} else {
			bits := maxBits - 1
			for bits > 1 && counts[bits] == 0 {
				bits--
			}
			counts[bits]--
			counts[bits-1]++
		}
	}
	// Re-assign lengths in order of increasing original length (stable):
	// collect symbols sorted by (origLen, symbol) and dole out new lengths
	// from the repaired histogram.
	type symLen struct {
		sym int
		len uint8
	}
	order := make([]symLen, 0, len(lengths))
	for s, l := range lengths {
		if l > 0 {
			order = append(order, symLen{s, l})
		}
	}
	// Insertion sort by (len, sym); alphabets are small (<300 symbols).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if a.len > b.len || (a.len == b.len && a.sym > b.sym) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	idx := 0
	for l := 1; l <= maxBits; l++ {
		for c := 0; c < counts[l]; c++ {
			lengths[order[idx].sym] = uint8(l)
			idx++
		}
	}
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint16, n uint8) uint16 {
	var r uint16
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// NewEncoderFromLengths builds an Encoder from canonical code lengths.
func NewEncoderFromLengths(lengths []uint8) (*Encoder, error) {
	e := new(Encoder)
	if err := e.Reset(lengths); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rebuilds the encoder for a new canonical code, reusing the code
// table storage. A pooled zero-value Encoder plus Reset makes repeated
// encodings allocation-free in steady state. On error the encoder is
// left unusable until a successful Reset.
func (e *Encoder) Reset(lengths []uint8) error {
	codes, err := canonicalCodesInto(e.codes, lengths)
	e.codes = codes
	return err
}

// canonicalCodes assigns canonical code values given lengths and verifies
// the Kraft inequality holds with equality (complete code) or that the
// code is empty/degenerate (single symbol).
func canonicalCodes(lengths []uint8) ([]Code, error) {
	return canonicalCodesInto(nil, lengths)
}

// canonicalCodesInto is canonicalCodes writing into dst (grown as
// needed; dst may be nil). All bookkeeping lives in fixed-size stack
// arrays so reuse with an adequately sized dst allocates nothing.
func canonicalCodesInto(dst []Code, lengths []uint8) ([]Code, error) {
	var counts [MaxBits + 1]int
	nonzero := 0
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		if l > MaxBits {
			return nil, ErrInvalidLengths
		}
		counts[l]++
		nonzero++
	}
	if cap(dst) < len(lengths) {
		dst = make([]Code, len(lengths))
	}
	codes := dst[:len(lengths)]
	for i := range codes {
		codes[i] = Code{}
	}
	if nonzero == 0 {
		return codes, nil
	}
	// first code value for each length
	var firsts [MaxBits + 2]uint16
	code := uint16(0)
	for l := 1; l <= MaxBits; l++ {
		code = (code + uint16(counts[l-1])) << 1
		firsts[l] = code
	}
	// Verify completeness: sum of counts[l]*2^(MaxBits-l) must be
	// 2^MaxBits, except for the degenerate 1-symbol code (one length-1
	// code, half-full) which we accept.
	k := 0
	for l := 1; l <= MaxBits; l++ {
		k += counts[l] << uint(MaxBits-l)
	}
	if k > 1<<MaxBits {
		return nil, ErrInvalidLengths
	}
	if k < 1<<MaxBits && !(nonzero == 1 && counts[1] == 1) {
		return nil, ErrInvalidLengths
	}
	var next [MaxBits + 1]uint16
	copy(next[:], firsts[:MaxBits+1])
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = Code{Bits: reverseBits(next[l], l), Len: l}
		next[l]++
	}
	return codes, nil
}

// Encode writes the code for symbol sym to w.
func (e *Encoder) Encode(w *bitio.Writer, sym int) error {
	if sym < 0 || sym >= len(e.codes) || e.codes[sym].Len == 0 {
		return fmt.Errorf("%w: %d", ErrBadSymbol, sym)
	}
	c := e.codes[sym]
	w.WriteBits(uint64(c.Bits), uint(c.Len))
	return nil
}

// CodeLen returns the code length for sym (0 if unused or out of range).
func (e *Encoder) CodeLen(sym int) int {
	if sym < 0 || sym >= len(e.codes) {
		return 0
	}
	return int(e.codes[sym].Len)
}

// NumSymbols returns the alphabet size of the encoder.
func (e *Encoder) NumSymbols() int { return len(e.codes) }

// Decoder decodes canonical Huffman codes using a one-level lookup table.
type Decoder struct {
	// table maps the next `tableBits` input bits to (symbol, length).
	// Codes longer than tableBits are resolved by a slow path walk.
	table     []tableEntry
	tableBits uint
	maxLen    uint8
	// slow-path canonical data
	lengths []uint8
	// codes is Reset's scratch for the canonical code assignment.
	codes []Code
}

type tableEntry struct {
	sym uint16
	len uint8 // 0 marks an invalid/overlong entry
}

// NewDecoderFromLengths builds a Decoder for the canonical code described
// by lengths.
func NewDecoderFromLengths(lengths []uint8) (*Decoder, error) {
	d := new(Decoder)
	if err := d.Reset(lengths); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset rebuilds the decoder for a new canonical code, reusing the
// lookup table, the length copy, and the code scratch. A pooled
// zero-value Decoder plus Reset makes repeated decodings allocation-free
// in steady state. On error the decoder is left unusable until a
// successful Reset.
func (d *Decoder) Reset(lengths []uint8) error {
	codes, err := canonicalCodesInto(d.codes, lengths)
	if err != nil {
		d.maxLen = 0
		d.table = d.table[:0]
		return err
	}
	d.codes = codes
	if cap(d.lengths) < len(lengths) {
		d.lengths = make([]uint8, len(lengths))
	}
	d.lengths = d.lengths[:len(lengths)]
	copy(d.lengths, lengths)
	var maxLen uint8
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	d.maxLen = maxLen
	d.tableBits = 0
	d.table = d.table[:0]
	if maxLen == 0 {
		return nil
	}
	tb := uint(maxLen)
	if tb > 11 {
		tb = 11
	}
	d.tableBits = tb
	if cap(d.table) < 1<<tb {
		d.table = make([]tableEntry, 1<<tb)
	}
	d.table = d.table[:1<<tb]
	for i := range d.table {
		d.table[i] = tableEntry{}
	}
	for sym, c := range codes {
		if c.Len == 0 || uint(c.Len) > tb {
			continue
		}
		// Fill all table slots whose low c.Len bits equal the code.
		step := 1 << uint(c.Len)
		for i := int(c.Bits); i < len(d.table); i += step {
			d.table[i] = tableEntry{sym: uint16(sym), len: c.Len}
		}
	}
	return nil
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bitio.Reader) (int, error) {
	if d.maxLen == 0 {
		return 0, ErrInvalidLengths
	}
	v, avail := r.Peek(d.tableBits)
	if avail > 0 {
		e := d.table[v]
		if e.len > 0 && uint(e.len) <= avail {
			r.Skip(uint(e.len))
			return int(e.sym), nil
		}
	}
	return d.decodeSlow(r)
}

// decodeSlow walks the canonical code bit by bit. It handles codes longer
// than the lookup table and reads near the end of input.
func (d *Decoder) decodeSlow(r *bitio.Reader) (int, error) {
	// Reconstruct canonical firsts/counts each call; this path is rare.
	var counts [MaxBits + 1]int
	for _, l := range d.lengths {
		if l > 0 {
			counts[l]++
		}
	}
	code := 0
	first := 0
	for l := 1; l <= int(d.maxLen); l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int(b)
		count := counts[l]
		if code-first < count {
			// Find the (code-first)-th symbol of length l in symbol order
			// (canonical assignment order).
			k := code - first
			for sym, sl := range d.lengths {
				if int(sl) == l {
					if k == 0 {
						return sym, nil
					}
					k--
				}
			}
			return 0, ErrInvalidLengths
		}
		first = (first + count) << 1
	}
	return 0, ErrInvalidLengths
}

// WriteLengths serializes a code-length vector compactly: 4 bits per
// length with a simple zero run-length escape. Layout per item:
//
//	0xF, runLen(8 bits)  -> runLen+1 zeros (runLen in [0,254])
//	otherwise            -> literal length 0..14
//
// Lengths of 15 are stored as 0xE+flag; since MaxBits is 15 and 0xF is the
// escape, length 15 is encoded as escape value 0xF,0xFF.
func WriteLengths(w *bitio.Writer, lengths []uint8) {
	for i := 0; i < len(lengths); {
		l := lengths[i]
		if l == 0 {
			run := 1
			for i+run < len(lengths) && lengths[i+run] == 0 && run < 255 {
				run++
			}
			w.WriteBits(0xF, 4)
			w.WriteBits(uint64(run-1), 8)
			i += run
			continue
		}
		if l == 15 {
			w.WriteBits(0xF, 4)
			w.WriteBits(0xFF, 8)
			i++
			continue
		}
		w.WriteBits(uint64(l), 4)
		i++
	}
}

// ReadLengths parses a vector of n code lengths written by WriteLengths.
func ReadLengths(r *bitio.Reader, n int) ([]uint8, error) {
	return ReadLengthsInto(r, nil, n)
}

// ReadLengthsInto parses n code lengths into dst, growing it as needed
// (dst may be nil), and returns the slice. Hot decode paths pass a
// pooled buffer so steady-state parses allocate nothing.
func ReadLengthsInto(r *bitio.Reader, dst []uint8, n int) ([]uint8, error) {
	if cap(dst) < n {
		dst = make([]uint8, n)
	}
	lengths := dst[:n]
	for i := range lengths {
		lengths[i] = 0
	}
	for i := 0; i < n; {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, err
		}
		if v == 0xF {
			run, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			if run == 0xFF {
				lengths[i] = 15
				i++
				continue
			}
			cnt := int(run) + 1
			if i+cnt > n {
				return nil, ErrInvalidLengths
			}
			i += cnt // zeros already there
			continue
		}
		lengths[i] = uint8(v)
		i++
	}
	return lengths, nil
}
