//go:build !race

// Package race reports whether the binary was built with the race
// detector. Allocation-regression tests consult it: the detector's
// instrumentation perturbs allocation counts (notably, sync.Pool puts
// are deliberately dropped at random under race), so AllocsPerRun
// assertions only hold in non-race builds.
package race

// Enabled is true when the race detector is active.
const Enabled = false
