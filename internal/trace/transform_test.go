package trace

import (
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{Name: "s", Requests: []Request{
		{Arrival: 0, Offset: 0, Size: 4096, Write: true},
		{Arrival: time.Second, Offset: 8192, Size: 4096},
		{Arrival: 2 * time.Second, Offset: 16384, Size: 8192, Write: true},
		{Arrival: 3 * time.Second, Offset: 4096, Size: 4096},
	}}
}

func TestScaleTime(t *testing.T) {
	tr := sampleTrace()
	fast, err := tr.ScaleTime(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration() != 1500*time.Millisecond {
		t.Fatalf("duration = %v", fast.Duration())
	}
	if tr.Duration() != 3*time.Second {
		t.Fatal("original mutated")
	}
	if fast.Stats().AvgIOPS <= tr.Stats().AvgIOPS {
		t.Fatal("acceleration should raise IOPS")
	}
	if _, err := tr.ScaleTime(0); err == nil {
		t.Fatal("zero factor should fail")
	}
	if _, err := tr.ScaleTime(-1); err == nil {
		t.Fatal("negative factor should fail")
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(time.Second, 3*time.Second)
	if len(w.Requests) != 2 {
		t.Fatalf("window kept %d requests", len(w.Requests))
	}
	if w.Requests[0].Arrival != 0 {
		t.Fatalf("window not rebased: %v", w.Requests[0].Arrival)
	}
	if w.Requests[1].Arrival != time.Second {
		t.Fatalf("second arrival = %v", w.Requests[1].Arrival)
	}
	empty := tr.Window(10*time.Second, 20*time.Second)
	if len(empty.Requests) != 0 {
		t.Fatal("out-of-range window should be empty")
	}
}

func TestFilterOps(t *testing.T) {
	tr := sampleTrace()
	reads := tr.FilterOps(true, false)
	writes := tr.FilterOps(false, true)
	both := tr.FilterOps(true, true)
	none := tr.FilterOps(false, false)
	if len(reads.Requests) != 2 || len(writes.Requests) != 2 {
		t.Fatalf("filter counts = %d/%d", len(reads.Requests), len(writes.Requests))
	}
	for _, r := range reads.Requests {
		if r.Write {
			t.Fatal("read filter kept a write")
		}
	}
	if len(both.Requests) != 4 || len(none.Requests) != 0 {
		t.Fatal("both/none filters wrong")
	}
}

func TestConcat(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	c := a.Concat(b, time.Second)
	if len(c.Requests) != 8 {
		t.Fatalf("concat length = %d", len(c.Requests))
	}
	// b's first request lands at a.Duration()+gap = 4s.
	if c.Requests[4].Arrival != 4*time.Second {
		t.Fatalf("second phase starts at %v", c.Requests[4].Arrival)
	}
	if c.Duration() != 7*time.Second {
		t.Fatalf("total duration = %v", c.Duration())
	}
	// Original traces untouched.
	if len(a.Requests) != 4 || b.Requests[0].Arrival != 0 {
		t.Fatal("inputs mutated")
	}
}

func TestScaleOffsets(t *testing.T) {
	tr := sampleTrace()
	half, err := tr.ScaleOffsets(0.5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if half.Requests[2].Offset != 8192 {
		t.Fatalf("offset = %d; want 8192", half.Requests[2].Offset)
	}
	for _, r := range half.Requests {
		if r.Offset%4096 != 0 {
			t.Fatalf("offset %d unaligned", r.Offset)
		}
	}
	if _, err := tr.ScaleOffsets(1, 3); err == nil {
		t.Fatal("non-power-of-two align should fail")
	}
	if _, err := tr.ScaleOffsets(-1, 4096); err == nil {
		t.Fatal("negative factor should fail")
	}
}
