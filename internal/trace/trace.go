// Package trace defines the block-level I/O trace model used throughout
// EDC and parsers/writers for the two public trace formats the paper
// replays: the Storage Performance Council ("financial"/OLTP) ASCII
// format and the MSR Cambridge CSV format. Real trace files drop in
// unchanged; the synthetic generators in internal/workload produce the
// same Trace type.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SectorSize is the logical sector unit used by SPC traces.
const SectorSize = 512

// Request is one block-level I/O.
type Request struct {
	// Arrival is the request's issue time relative to trace start.
	Arrival time.Duration
	// Offset is the byte offset on the logical volume.
	Offset int64
	// Size is the transfer length in bytes.
	Size int64
	// Write distinguishes writes from reads.
	Write bool
	// Tenant optionally names the submitting tenant for multi-tenant
	// QoS. Empty means untagged: the request is treated exactly as
	// before tenancy existed, and writers emit the pre-tenant record
	// format byte for byte.
	Tenant string
}

// Trace is an ordered sequence of requests plus identification metadata.
type Trace struct {
	Name     string
	Requests []Request
}

// Duration returns the arrival time of the last request.
func (t *Trace) Duration() time.Duration {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival
}

// Stats summarizes a trace (the paper's Table II columns).
type Stats struct {
	Requests   int
	ReadRatio  float64 // fraction of requests that are reads
	AvgSize    float64 // bytes
	AvgIOPS    float64 // requests / second over the trace duration
	WriteBytes int64
	ReadBytes  int64
	MaxOffset  int64 // highest byte touched (volume footprint)
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Requests = len(t.Requests)
	if s.Requests == 0 {
		return s
	}
	reads := 0
	var sizeSum int64
	for _, r := range t.Requests {
		sizeSum += r.Size
		if r.Write {
			s.WriteBytes += r.Size
		} else {
			reads++
			s.ReadBytes += r.Size
		}
		if end := r.Offset + r.Size; end > s.MaxOffset {
			s.MaxOffset = end
		}
	}
	s.ReadRatio = float64(reads) / float64(s.Requests)
	s.AvgSize = float64(sizeSum) / float64(s.Requests)
	if d := t.Duration(); d > 0 {
		s.AvgIOPS = float64(s.Requests) / d.Seconds()
	}
	return s
}

// SortByArrival orders requests by arrival time (stable).
func (t *Trace) SortByArrival() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
}

// Clip returns a copy containing at most n requests.
func (t *Trace) Clip(n int) *Trace {
	if n > len(t.Requests) {
		n = len(t.Requests)
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, n)}
	copy(out.Requests, t.Requests[:n])
	return out
}

// ErrFormat reports an unparseable trace line.
var ErrFormat = errors.New("trace: malformed record")

// ParseSPC reads the Storage Performance Council ASCII format used by the
// UMass financial (Fin1/Fin2) traces:
//
//	ASU,LBA,Size,Opcode,Timestamp[,...]
//
// where LBA counts 512-byte sectors, Size is in bytes, Opcode is r/R or
// w/W, and Timestamp is seconds from trace start. Extra trailing fields
// are ignored, except a "tenant=NAME" field (the extension WriteSPC
// emits for tagged requests), which sets Request.Tenant.
func ParseSPC(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		lba, err1 := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		size, err2 := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
		ts, err3 := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		op := strings.ToLower(strings.TrimSpace(f[3]))
		if op != "r" && op != "w" {
			return nil, fmt.Errorf("%w: line %d: opcode %q", ErrFormat, lineNo, f[3])
		}
		if size <= 0 || lba < 0 || ts < 0 {
			return nil, fmt.Errorf("%w: line %d: negative field", ErrFormat, lineNo)
		}
		tenant := ""
		for _, extra := range f[5:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(extra), "tenant="); ok {
				tenant = v
			}
		}
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(ts * float64(time.Second)),
			Offset:  lba * SectorSize,
			Size:    size,
			Write:   op == "w",
			Tenant:  tenant,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.SortByArrival()
	return t, nil
}

// WriteSPC writes t in the SPC ASCII format (ASU fixed to 0). Tagged
// requests gain a trailing ",tenant=NAME" field; untagged requests emit
// the pre-tenant record byte for byte.
func WriteSPC(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		op := "r"
		if r.Write {
			op = "w"
		}
		var err error
		if r.Tenant != "" {
			_, err = fmt.Fprintf(bw, "0,%d,%d,%s,%.6f,tenant=%s\n",
				r.Offset/SectorSize, r.Size, op, r.Arrival.Seconds(), r.Tenant)
		} else {
			_, err = fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n",
				r.Offset/SectorSize, r.Size, op, r.Arrival.Seconds())
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// msrEpochOffset converts Windows FILETIME (100 ns ticks since 1601) to a
// trace-relative duration: we subtract the first record's timestamp, so
// the absolute epoch does not matter.

// ParseMSR reads the MSR Cambridge CSV format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows FILETIME ticks (100 ns); Type is "Read" or
// "Write"; Offset and Size are bytes. Arrival times are rebased to the
// first record. A Hostname other than the synthetic default "edc" (or
// empty) becomes Request.Tenant — MSR's host column is the natural
// place to carry the submitting stream's identity.
func ParseMSR(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{Name: name}
	lineNo := 0
	var base int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		ts, err1 := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		off, err2 := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		size, err3 := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		var write bool
		switch strings.ToLower(strings.TrimSpace(f[3])) {
		case "write", "w":
			write = true
		case "read", "r":
			write = false
		default:
			return nil, fmt.Errorf("%w: line %d: type %q", ErrFormat, lineNo, f[3])
		}
		if size <= 0 || off < 0 {
			return nil, fmt.Errorf("%w: line %d: negative field", ErrFormat, lineNo)
		}
		if base < 0 {
			base = ts
		}
		tenant := strings.TrimSpace(f[1])
		if tenant == "edc" {
			tenant = ""
		}
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(ts-base) * 100 * time.Nanosecond,
			Offset:  off,
			Size:    size,
			Write:   write,
			Tenant:  tenant,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.SortByArrival()
	return t, nil
}

// WriteMSR writes t in the MSR CSV format. Tagged requests carry the
// tenant in the Hostname column; untagged requests keep the synthetic
// default "edc", emitting the pre-tenant record byte for byte.
func WriteMSR(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		typ := "Read"
		if r.Write {
			typ = "Write"
		}
		host := r.Tenant
		if host == "" {
			host = "edc"
		}
		ticks := r.Arrival.Nanoseconds() / 100
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n",
			ticks, host, typ, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
