package trace

import (
	"strings"
	"testing"
)

func FuzzParseSPC(f *testing.F) {
	f.Add("0,303567,3584,w,0.026214\n1,1209856,4096,R,0.026682\n")
	f.Add("# comment\n\n0,512,512,r,1.5\n")
	f.Add("0,x,y,z,w\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseSPC(strings.NewReader(in), "fuzz")
		if err == nil {
			// Parsed traces must be internally consistent.
			for _, r := range tr.Requests {
				if r.Size <= 0 || r.Offset < 0 || r.Arrival < 0 {
					t.Fatalf("invalid parsed request: %+v", r)
				}
			}
		}
	})
}

func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,usr,0,Write,7014609920,24576,41286\n")
	f.Add("1,usr,0,Read,0,512,0\n")
	f.Add(",,,,,\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseMSR(strings.NewReader(in), "fuzz")
		if err == nil {
			for _, r := range tr.Requests {
				if r.Size <= 0 || r.Offset < 0 {
					t.Fatalf("invalid parsed request: %+v", r)
				}
			}
		}
	})
}
