package trace

import (
	"fmt"
	"time"
)

// Transforms for replay studies: accelerate or decelerate a trace, slice
// windows out of it, restrict it to one operation type, or concatenate
// phases. All transforms return new traces and leave the input intact.

// ScaleTime multiplies every arrival time by factor (< 1 accelerates the
// trace, raising its intensity; > 1 stretches it). factor must be
// positive.
func (t *Trace) ScaleTime(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: ScaleTime factor %v must be positive", factor)
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	for i, r := range t.Requests {
		r.Arrival = time.Duration(float64(r.Arrival) * factor)
		out.Requests[i] = r
	}
	return out, nil
}

// Window returns the requests with from <= Arrival < to, rebased so the
// first kept request arrives at its offset from `from`.
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if r.Arrival >= from && r.Arrival < to {
			r.Arrival -= from
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// FilterOps keeps only reads, only writes, or both.
func (t *Trace) FilterOps(keepReads, keepWrites bool) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if (r.Write && keepWrites) || (!r.Write && keepReads) {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Concat appends other after t, shifting other's arrivals past t's last
// arrival by gap.
func (t *Trace) Concat(other *Trace, gap time.Duration) *Trace {
	out := &Trace{Name: t.Name, Requests: append([]Request(nil), t.Requests...)}
	base := t.Duration() + gap
	for _, r := range other.Requests {
		r.Arrival += base
		out.Requests = append(out.Requests, r)
	}
	return out
}

// ScaleOffsets multiplies offsets by factor and realigns them to `align`
// bytes — shrinking or spreading the footprint to fit a different
// volume. factor must be positive; align must be a power of two.
func (t *Trace) ScaleOffsets(factor float64, align int64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: ScaleOffsets factor %v must be positive", factor)
	}
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("trace: align %d must be a positive power of two", align)
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	for i, r := range t.Requests {
		r.Offset = int64(float64(r.Offset)*factor) &^ (align - 1)
		out.Requests[i] = r
	}
	return out, nil
}
