package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseSPC(t *testing.T) {
	in := `0,303567,3584,w,0.026214
1,1209856,4096,R,0.026682
# comment line

0,512,512,r,1.5
`
	tr, err := ParseSPC(strings.NewReader(in), "fin")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	r0 := tr.Requests[0]
	if !r0.Write || r0.Offset != 303567*512 || r0.Size != 3584 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Arrival != time.Duration(0.026214*float64(time.Second)) {
		t.Fatalf("arrival = %v", r0.Arrival)
	}
	if tr.Requests[1].Write {
		t.Fatal("R opcode should be a read")
	}
	if tr.Name != "fin" {
		t.Fatalf("name = %q", tr.Name)
	}
}

func TestParseSPCErrors(t *testing.T) {
	cases := []string{
		"0,1,2",           // too few fields
		"0,x,4096,w,1.0",  // bad lba
		"0,1,4096,z,1.0",  // bad opcode
		"0,1,-4,w,1.0",    // negative size
		"0,1,4096,w,-1.0", // negative time
	}
	for i, c := range cases {
		if _, err := ParseSPC(strings.NewReader(c), "x"); err == nil {
			t.Fatalf("case %d: expected parse error for %q", i, c)
		}
	}
}

func TestSPCRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Arrival: 0, Offset: 4096, Size: 8192, Write: true},
		{Arrival: 100 * time.Millisecond, Offset: 0, Size: 512, Write: false},
	}}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSPC(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != 2 {
		t.Fatalf("requests = %d", len(got.Requests))
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], got.Requests[i]
		if a.Offset != b.Offset || a.Size != b.Size || a.Write != b.Write {
			t.Fatalf("request %d: %+v != %+v", i, a, b)
		}
		if d := a.Arrival - b.Arrival; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
	}
}

func TestParseMSR(t *testing.T) {
	in := `128166372003061629,usr,0,Write,7014609920,24576,41286
128166372016382155,usr,0,Read,2657792,512,1963
`
	tr, err := ParseMSR(strings.NewReader(in), "usr_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	if tr.Requests[0].Arrival != 0 {
		t.Fatalf("first arrival should rebase to 0, got %v", tr.Requests[0].Arrival)
	}
	wantGap := time.Duration(128166372016382155-128166372003061629) * 100 * time.Nanosecond
	if tr.Requests[1].Arrival != wantGap {
		t.Fatalf("second arrival = %v; want %v", tr.Requests[1].Arrival, wantGap)
	}
	if !tr.Requests[0].Write || tr.Requests[1].Write {
		t.Fatal("op types wrong")
	}
	if tr.Requests[0].Offset != 7014609920 || tr.Requests[0].Size != 24576 {
		t.Fatalf("r0 = %+v", tr.Requests[0])
	}
}

func TestMSRRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Arrival: 0, Offset: 1 << 20, Size: 4096, Write: true},
		{Arrival: time.Second, Offset: 0, Size: 65536, Write: false},
	}}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMSR(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], got.Requests[i]
		if a != b {
			t.Fatalf("request %d: %+v != %+v", i, a, b)
		}
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"1,2,3",
		"x,usr,0,Write,0,4096,0",
		"1,usr,0,Fly,0,4096,0",
		"1,usr,0,Write,-1,4096,0",
		"1,usr,0,Write,0,0,0",
	}
	for i, c := range cases {
		if _, err := ParseMSR(strings.NewReader(c), "x"); err == nil {
			t.Fatalf("case %d: expected parse error for %q", i, c)
		}
	}
}

func TestSPCTenantRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Arrival: 0, Offset: 4096, Size: 8192, Write: true, Tenant: "alice"},
		{Arrival: 100 * time.Millisecond, Offset: 0, Size: 512, Write: false},
	}}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, orig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasSuffix(lines[0], ",tenant=alice") {
		t.Fatalf("tagged line missing tenant field: %q", lines[0])
	}
	if strings.Contains(lines[1], "tenant") {
		t.Fatalf("untagged line grew a tenant field: %q", lines[1])
	}
	got, err := ParseSPC(strings.NewReader(out), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests[0].Tenant != "alice" || got.Requests[1].Tenant != "" {
		t.Fatalf("tenants = %q, %q", got.Requests[0].Tenant, got.Requests[1].Tenant)
	}
}

func TestMSRTenantRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Requests: []Request{
		{Arrival: 0, Offset: 1 << 20, Size: 4096, Write: true, Tenant: "bob"},
		{Arrival: time.Second, Offset: 0, Size: 65536, Write: false},
	}}
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], ",bob,") {
		t.Fatalf("tagged line should carry the tenant as hostname: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",edc,") {
		t.Fatalf("untagged line should keep the synthetic host: %q", lines[1])
	}
	got, err := ParseMSR(strings.NewReader(buf.String()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Requests {
		if orig.Requests[i] != got.Requests[i] {
			t.Fatalf("request %d: %+v != %+v", i, orig.Requests[i], got.Requests[i])
		}
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 0, Offset: 0, Size: 4096, Write: true},
		{Arrival: time.Second, Offset: 8192, Size: 8192, Write: false},
		{Arrival: 2 * time.Second, Offset: 4096, Size: 4096, Write: true},
	}}
	s := tr.Stats()
	if s.Requests != 3 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if s.ReadRatio < 0.33 || s.ReadRatio > 0.34 {
		t.Fatalf("read ratio = %v", s.ReadRatio)
	}
	if s.AvgSize != (4096+8192+4096)/3.0 {
		t.Fatalf("avg size = %v", s.AvgSize)
	}
	if s.AvgIOPS != 1.5 {
		t.Fatalf("iops = %v", s.AvgIOPS)
	}
	if s.WriteBytes != 8192 || s.ReadBytes != 8192 {
		t.Fatalf("bytes = %d/%d", s.WriteBytes, s.ReadBytes)
	}
	if s.MaxOffset != 16384 {
		t.Fatalf("max offset = %d", s.MaxOffset)
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := &Trace{}
	s := tr.Stats()
	if s.Requests != 0 || s.AvgIOPS != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	if tr.Duration() != 0 {
		t.Fatal("empty duration should be 0")
	}
}

func TestClip(t *testing.T) {
	tr := &Trace{Name: "x", Requests: make([]Request, 10)}
	c := tr.Clip(3)
	if len(c.Requests) != 3 || c.Name != "x" {
		t.Fatalf("clip = %d requests", len(c.Requests))
	}
	c2 := tr.Clip(100)
	if len(c2.Requests) != 10 {
		t.Fatalf("over-clip = %d", len(c2.Requests))
	}
	// Clip must copy, not alias.
	c.Requests[0].Size = 999
	if tr.Requests[0].Size == 999 {
		t.Fatal("Clip aliases the original slice")
	}
}

func TestSortByArrival(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 3 * time.Second}, {Arrival: time.Second}, {Arrival: 2 * time.Second},
	}}
	tr.SortByArrival()
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Arrival < tr.Requests[i-1].Arrival {
			t.Fatal("not sorted")
		}
	}
}
