package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the process-wide work-stealing codec pool. The
// per-shard Pool (parallel.go) gives each replay pipeline a private set
// of workers, which wastes cores under skew: a zipfian workload leaves
// cold shards' workers parked while the hot shard's pool saturates. A
// SharedPool instead owns one set of workers for the whole process;
// every pipeline registers a bounded local Queue, and an idle worker
// that finds its own queue empty steals from the others. Codec jobs are
// pure functions joined at fixed virtual-time events, so which worker
// (or which pipeline's backlog) runs a job never changes results — only
// wall-clock speed.

// sharedQueueCapPerWorker sizes each client queue at 4 slots per pool
// worker — the same backlog-to-worker ratio the per-shard Pool used for
// its job channel.
const sharedQueueCapPerWorker = 4

// SharedPool is a fixed set of worker goroutines draining the bounded
// local queues registered against it. Workers scan the queues round-
// robin starting at their own index, so distinct workers prefer
// distinct queues but steal from any backlog once their preferred one
// is empty. Idle workers park on a condition variable; a pool with no
// queued work costs nothing.
type SharedPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  []*Queue // copy-on-write under mu; scanned by workers
	workers int
	qcap    int
	pending int // jobs pushed and not yet popped
	idle    int // workers parked in cond.Wait
	closed  bool
	wg      sync.WaitGroup

	submitted atomic.Int64 // jobs accepted onto a queue
	stolen    atomic.Int64 // jobs a worker took from a non-preferred queue
	inline    atomic.Int64 // jobs run by the submitter (queue full)
}

// PoolStats is a point-in-time snapshot of a SharedPool's activity
// counters (wall-clock metadata; never part of simulated results).
type PoolStats struct {
	// Workers is the pool's fixed worker-goroutine count.
	Workers int `json:"workers"`
	// Submitted counts jobs accepted onto a client queue.
	Submitted int64 `json:"submitted"`
	// Stolen counts jobs a worker took from a queue other than the one
	// its index prefers.
	Stolen int64 `json:"stolen"`
	// Inline counts jobs the submitter ran itself because its queue was
	// full (backpressure).
	Inline int64 `json:"inline"`
}

// NewSharedPool starts a pool with n workers (n < 1 is clamped to 1).
// Each registered Queue is bounded at 4*n jobs.
func NewSharedPool(n int) *SharedPool {
	if n < 1 {
		n = 1
	}
	p := &SharedPool{workers: n, qcap: sharedQueueCapPerWorker * n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *SharedPool
)

// Shared returns the process-wide pool, created on first use with
// runtime.GOMAXPROCS(0) workers. It is never closed; its workers park
// when no pipeline has codec work queued.
func Shared() *SharedPool {
	sharedOnce.Do(func() { sharedPool = NewSharedPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Workers returns the pool's fixed worker count.
func (p *SharedPool) Workers() int { return p.workers }

// Stats snapshots the pool's activity counters.
func (p *SharedPool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Submitted: p.submitted.Load(),
		Stolen:    p.stolen.Load(),
		Inline:    p.inline.Load(),
	}
}

// Close stops the workers after the queues drain. Only private pools
// (tests) call this; the Shared singleton lives for the process.
func (p *SharedPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// NewQueue registers a new bounded client queue on the pool.
func (p *SharedPool) NewQueue() *Queue {
	q := &Queue{pool: p, jobs: make([]func(), p.qcap)}
	p.mu.Lock()
	qs := make([]*Queue, len(p.queues)+1)
	copy(qs, p.queues)
	qs[len(qs)-1] = q
	p.queues = qs
	p.mu.Unlock()
	return q
}

// worker is one pool goroutine: drain jobs from any queue, preferring
// the one at its own index; park when every queue is empty.
func (p *SharedPool) worker(self int) {
	defer p.wg.Done()
	for {
		if f, stole := p.grab(self); f != nil {
			if stole {
				p.stolen.Add(1)
			}
			f()
			continue
		}
		p.mu.Lock()
		for p.pending <= 0 && !p.closed {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if p.pending <= 0 && p.closed {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// grab scans every registered queue round-robin from the worker's own
// index and pops the first job found; stole reports whether the job
// came from a queue other than the preferred one.
func (p *SharedPool) grab(self int) (f func(), stole bool) {
	p.mu.Lock()
	qs := p.queues
	p.mu.Unlock()
	if len(qs) == 0 {
		return nil, false
	}
	start := self % len(qs)
	for i := 0; i < len(qs); i++ {
		q := qs[(start+i)%len(qs)]
		if f := q.pop(); f != nil {
			p.mu.Lock()
			p.pending--
			p.mu.Unlock()
			return f, i != 0
		}
	}
	return nil, false
}

// Queue is one client's bounded FIFO of jobs on a SharedPool. A replay
// or serve pipeline owns exactly one; Submit is called from its event-
// loop goroutine (any goroutine is safe). When the queue is full the
// submitter runs the job inline — the same backpressure the per-shard
// Pool's bounded channel gave. The trailing pad keeps one queue's hot
// mutex and ring state from sharing a cache line with its neighbor's.
type Queue struct {
	pool *SharedPool
	mu   sync.Mutex
	jobs []func() // fixed-capacity ring
	head int
	n    int
	_    [64]byte // cache-line pad against false sharing between queues
}

// push appends under q.mu; it reports false when the ring is full.
func (q *Queue) push(f func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == len(q.jobs) {
		return false
	}
	q.jobs[(q.head+q.n)%len(q.jobs)] = f
	q.n++
	return true
}

// pop removes the oldest job, nil when empty.
func (q *Queue) pop() func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil
	}
	f := q.jobs[q.head]
	q.jobs[q.head] = nil
	q.head = (q.head + 1) % len(q.jobs)
	q.n--
	return f
}

// Submit queues f for the pool's workers, or runs it inline when the
// queue is full. Satisfies Executor, so parallel.Go dispatches futures
// through a Queue exactly as through a private Pool.
func (q *Queue) Submit(f func()) {
	p := q.pool
	if !q.push(f) {
		p.inline.Add(1)
		f()
		return
	}
	p.submitted.Add(1)
	p.mu.Lock()
	p.pending++
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Close deregisters the queue. Clients join every future they dispatch
// before closing, so the queue is normally empty; any straggler jobs
// are run inline here so no future is left unresolved.
func (q *Queue) Close() {
	p := q.pool
	p.mu.Lock()
	qs := make([]*Queue, 0, len(p.queues))
	for _, cand := range p.queues {
		if cand != q {
			qs = append(qs, cand)
		}
	}
	p.queues = qs
	p.mu.Unlock()
	for {
		f := q.pop()
		if f == nil {
			return
		}
		p.mu.Lock()
		p.pending--
		p.mu.Unlock()
		p.inline.Add(1)
		f()
	}
}
