// Package parallel provides a bounded pool of OS-level worker goroutines
// plus single-consumer futures, used to overlap *real* CPU work (codec
// execution, content generation) with the virtual-time event loop.
//
// The EDC replay engine is a discrete-event simulator: virtual time is
// advanced by a single goroutine draining an event heap, and every
// statistic it reports is a function of virtual time only. Real codec
// work, however, burns wall-clock time, and on a multi-hour trace the
// inline Compress calls — not the event arithmetic — dominate replay
// duration. Because compressed output is a pure function of
// (content, codec), that work can run ahead on other cores: the event
// loop dispatches a closure when the write run is formed and joins on
// the result exactly where the sequential code would have produced it.
// The virtual-time event order, and therefore every reported statistic,
// is bit-identical for any worker count.
package parallel

import "sync"

// Pool is a fixed-size pool of worker goroutines executing submitted
// closures in FIFO submission order (per worker; across workers the
// execution order is unspecified, which is safe because callers join
// results through Futures). Submit blocks when the backlog is full,
// providing natural backpressure on the dispatching event loop.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewPool starts a pool of n workers (n < 1 is treated as 1). The
// backlog is bounded at 4*n outstanding closures.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{jobs: make(chan func(), 4*n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Submit enqueues f for execution, blocking while the backlog is full.
// Submit must not be called after Close.
func (p *Pool) Submit(f func()) { p.jobs <- f }

// Close stops accepting work and waits for all in-flight closures to
// finish. It is safe to call exactly once.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Executor is anything that runs submitted closures: a private Pool or
// a client Queue on the process-wide SharedPool. Pipelines hold their
// dispatch target through this interface so replay and serve code is
// indifferent to which backs it.
type Executor interface {
	// Submit hands one closure to the executor; it may run on a worker
	// goroutine or inline on the caller (bounded-backlog backpressure).
	Submit(f func())
}

// Future holds the eventual result of a closure submitted to a Pool.
// It is single-consumer: exactly one goroutine may call Wait (possibly
// repeatedly — the first call blocks, later calls return the cached
// value). That consumer is the simulator's event-loop goroutine.
type Future[T any] struct {
	ch   chan T
	v    T
	done bool
}

// Go submits f to the executor and returns a Future for its result.
func Go[T any](p Executor, f func() T) *Future[T] {
	fut := &Future[T]{ch: make(chan T, 1)}
	p.Submit(func() { fut.ch <- f() })
	return fut
}

// Resolved returns an already-completed Future carrying v; Wait returns
// immediately. It lets callers keep one join point when work was
// executed inline (sequential mode).
func Resolved[T any](v T) *Future[T] {
	return &Future[T]{v: v, done: true}
}

// Wait blocks until the closure has run and returns its result.
func (f *Future[T]) Wait() T {
	if !f.done {
		f.v = <-f.ch
		f.done = true
	}
	return f.v
}
