package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int64
	const jobs = 1000
	futs := make([]*Future[int], jobs)
	for i := 0; i < jobs; i++ {
		i := i
		futs[i] = Go(p, func() int {
			n.Add(1)
			return i * i
		})
	}
	for i, f := range futs {
		if got := f.Wait(); got != i*i {
			t.Fatalf("future %d = %d, want %d", i, got, i*i)
		}
	}
	p.Close()
	if n.Load() != jobs {
		t.Fatalf("ran %d jobs, want %d", n.Load(), jobs)
	}
}

func TestFutureWaitIdempotent(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	f := Go(p, func() string { return "x" })
	if f.Wait() != "x" || f.Wait() != "x" {
		t.Fatal("Wait not idempotent")
	}
}

func TestResolved(t *testing.T) {
	f := Resolved([]byte("abc"))
	if string(f.Wait()) != "abc" {
		t.Fatal("Resolved future lost its value")
	}
}

func TestPoolMinWorkers(t *testing.T) {
	p := NewPool(0) // clamped to 1
	defer p.Close()
	if got := Go(p, func() int { return 7 }).Wait(); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestCloseWaitsForInFlight(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Close()
	if n.Load() != 64 {
		t.Fatalf("Close returned before all jobs ran: %d/64", n.Load())
	}
}
