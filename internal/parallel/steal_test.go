package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSharedPoolRunsAllJobs(t *testing.T) {
	p := NewSharedPool(4)
	defer p.Close()
	q1, q2 := p.NewQueue(), p.NewQueue()
	defer q1.Close()
	defer q2.Close()
	var n atomic.Int64
	const jobs = 500
	futs := make([]*Future[int], 2*jobs)
	for i := 0; i < jobs; i++ {
		i := i
		futs[2*i] = Go[int](q1, func() int { n.Add(1); return i })
		futs[2*i+1] = Go[int](q2, func() int { n.Add(1); return -i })
	}
	for i := 0; i < jobs; i++ {
		if got := futs[2*i].Wait(); got != i {
			t.Fatalf("q1 future %d = %d", i, got)
		}
		if got := futs[2*i+1].Wait(); got != -i {
			t.Fatalf("q2 future %d = %d", i, got)
		}
	}
	if n.Load() != 2*jobs {
		t.Fatalf("ran %d jobs, want %d", n.Load(), 2*jobs)
	}
}

// A worker whose preferred queue is empty must steal from a backlogged
// one: with every job funneled through a single queue on a multi-worker
// pool, all of it still completes (and under -race, concurrently).
func TestSharedPoolStealsFromBackloggedQueue(t *testing.T) {
	p := NewSharedPool(4)
	defer p.Close()
	// Several registered queues, but only one ever submits.
	idle1, idle2 := p.NewQueue(), p.NewQueue()
	defer idle1.Close()
	defer idle2.Close()
	hot := p.NewQueue()
	defer hot.Close()
	var n atomic.Int64
	var futs []*Future[int]
	for i := 0; i < 2000; i++ {
		futs = append(futs, Go[int](hot, func() int { return int(n.Add(1)) }))
	}
	for _, f := range futs {
		f.Wait()
	}
	if n.Load() != 2000 {
		t.Fatalf("ran %d jobs, want 2000", n.Load())
	}
}

// A full queue must push the job back on the submitter (inline
// execution), not block or drop it.
func TestSharedQueueInlineWhenFull(t *testing.T) {
	p := NewSharedPool(1) // queue capacity 4
	defer p.Close()
	q := p.NewQueue()
	defer q.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	q.Submit(func() { close(started); <-gate }) // occupies the only worker
	<-started
	for i := 0; i < 4; i++ { // fill the ring
		q.Submit(func() { <-gate })
	}
	ran := false
	q.Submit(func() { ran = true }) // full: must run inline, synchronously
	if !ran {
		t.Fatal("submit to a full queue did not run the job inline")
	}
	if s := p.Stats(); s.Inline == 0 {
		t.Fatalf("inline counter not bumped: %+v", s)
	}
	close(gate)
}

// Closing a queue with stragglers runs them rather than stranding their
// futures.
func TestSharedQueueCloseDrains(t *testing.T) {
	p := NewSharedPool(1)
	q := p.NewQueue()
	gate := make(chan struct{})
	started := make(chan struct{})
	q.Submit(func() { close(started); <-gate })
	<-started
	var n atomic.Int64
	futs := []*Future[int]{
		Go[int](q, func() int { return int(n.Add(1)) }),
		Go[int](q, func() int { return int(n.Add(1)) }),
	}
	q.Close() // worker is blocked: Close itself must run the stragglers
	for _, f := range futs {
		f.Wait()
	}
	if n.Load() != 2 {
		t.Fatalf("close drained %d jobs, want 2", n.Load())
	}
	close(gate)
	p.Close()
}

// Hammer several queues from many goroutines while workers steal across
// them; run under -race this is the pool's memory-safety gate.
func TestSharedPoolConcurrentSubmitters(t *testing.T) {
	p := NewSharedPool(4)
	defer p.Close()
	const submitters = 8
	const perSubmitter = 500
	var n atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		q := p.NewQueue()
		go func() {
			defer wg.Done()
			defer q.Close()
			futs := make([]*Future[int], perSubmitter)
			for i := 0; i < perSubmitter; i++ {
				futs[i] = Go[int](q, func() int { return int(n.Add(1)) })
			}
			for _, f := range futs {
				f.Wait()
			}
		}()
	}
	wg.Wait()
	if n.Load() != submitters*perSubmitter {
		t.Fatalf("ran %d jobs, want %d", n.Load(), submitters*perSubmitter)
	}
	s := p.Stats()
	if s.Submitted+s.Inline != submitters*perSubmitter {
		t.Fatalf("stats lost jobs: %+v", s)
	}
}

func TestSharedSingletonWorkers(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() is not a singleton")
	}
	if Shared().Workers() < 1 {
		t.Fatalf("shared pool has %d workers", Shared().Workers())
	}
}
