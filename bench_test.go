// bench_test.go hosts one testing.B benchmark per paper table/figure.
// Each benchmark drives the same experiment code as cmd/edcbench (with
// reduced request counts so `go test -bench=.` completes in minutes) and
// reports the headline metric of its figure via b.ReportMetric, so the
// benchmark output doubles as a compact reproduction record.
//
// Regenerate the full-size tables with:  go run ./cmd/edcbench
package edc_test

import (
	"strconv"
	"testing"
	"time"

	"edc"
	"edc/internal/bench"
)

// benchParams keeps testing.B runs small; cmd/edcbench uses the full
// defaults.
var benchParams = bench.Params{Requests: 3000, VolumeMiB: 192}

// runExperiment executes one bench experiment once per benchmark run.
func runExperiment(b *testing.B, id string) []*bench.Table {
	b.Helper()
	var tables []*bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = bench.Run(id, benchParams)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tables
}

// cell parses table cell [row][col] as a float metric.
func cell(b *testing.B, t *bench.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell [%d][%d] = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTab1Setup(b *testing.B) {
	tables := runExperiment(b, "tab1")
	b.ReportMetric(float64(len(tables[0].Rows)), "config-rows")
}

func BenchmarkTab2WorkloadCharacteristics(b *testing.B) {
	tables := runExperiment(b, "tab2")
	// Report Fin1 read percentage: the headline Table II column.
	b.ReportMetric(cell(b, tables[0], 0, 2), "fin1-read-pct")
}

func BenchmarkFig1RequestSizeLatency(b *testing.B) {
	tables := runExperiment(b, "fig1")
	t := tables[0]
	// Linearity: normalized latency of the largest size over the size
	// factor (1.0 = perfectly linear).
	last := len(t.Rows) - 1
	norm := cell(b, t, last, 3)
	sizeKiB := cell(b, t, last, 0)
	b.ReportMetric(norm/(sizeKiB/4), "linearity")
}

func BenchmarkFig2CodecEfficiency(b *testing.B) {
	tables := runExperiment(b, "fig2")
	t := tables[0]
	// Report the linux-src bwz/lzf ratio gap (paper: bzip2 best ratio).
	lzfRatio := cell(b, t, 0, 2)
	bwzRatio := cell(b, t, 3, 2)
	b.ReportMetric(bwzRatio/lzfRatio, "bwz-vs-lzf-ratio")
}

func BenchmarkFig3Burstiness(b *testing.B) {
	tables := runExperiment(b, "fig3")
	// Peak/mean of the OLTP workload: the burstiness EDC exploits.
	b.ReportMetric(cell(b, tables[0], 0, 3), "fin1-peak-over-mean")
}

// evalMetric extracts scheme x "average" from a fig8/9/10/11 table.
func evalMetric(b *testing.B, t *bench.Table, scheme edc.Scheme) float64 {
	b.Helper()
	for i, row := range t.Rows {
		if row[0] == string(scheme) {
			return cell(b, t, i, len(row)-1)
		}
	}
	b.Fatalf("scheme %s not in table %s", scheme, t.ID)
	return 0
}

func BenchmarkFig8CompressionRatio(b *testing.B) {
	tables := runExperiment(b, "fig8")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeEDC), "edc-ratio")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeBzip2), "bzip2-ratio")
}

func BenchmarkFig9Composite(b *testing.B) {
	tables := runExperiment(b, "fig9")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeEDC), "edc-composite")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeGzip), "gzip-composite")
}

func BenchmarkFig10ResponseTime(b *testing.B) {
	tables := runExperiment(b, "fig10")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeEDC), "edc-resp-norm")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeBzip2), "bzip2-resp-norm")
}

func BenchmarkFig11RAIS5(b *testing.B) {
	tables := runExperiment(b, "fig11")
	b.ReportMetric(evalMetric(b, tables[0], edc.SchemeEDC), "edc-resp-norm")
}

func BenchmarkFig12ThresholdSensitivity(b *testing.B) {
	tables := runExperiment(b, "fig12")
	t := tables[0]
	// Ratio span across the sweep: how much the knob matters.
	lo := cell(b, t, 0, 2)
	hi := cell(b, t, len(t.Rows)-1, 2)
	b.ReportMetric(hi-lo, "ratio-span")
}

func BenchmarkAblationSD(b *testing.B) {
	tables := runExperiment(b, "ablation-sd")
	t := tables[0]
	with := cell(b, t, 0, 3)
	without := cell(b, t, 1, 3)
	b.ReportMetric(with/without, "sd-ratio-gain")
}

func BenchmarkAblationSampling(b *testing.B) {
	tables := runExperiment(b, "ablation-sampling")
	t := tables[0]
	withCPU := cell(b, t, 0, 5)
	withoutCPU := cell(b, t, 1, 5)
	b.ReportMetric(withoutCPU/withCPU, "cpu-waste-factor")
}

func BenchmarkAblationSlots(b *testing.B) {
	tables := runExperiment(b, "ablation-slots")
	t := tables[0]
	quant := cell(b, t, 0, 4)
	exact := cell(b, t, 1, 4)
	b.ReportMetric(exact/quant, "fragmentation-factor")
}

// BenchmarkReplayThroughput measures raw simulator speed: replayed
// requests per wall-clock second for the default EDC stack.
func BenchmarkReplayThroughput(b *testing.B) {
	const volume = 128 << 20
	prof, err := edc.WorkloadByName("fin1", volume)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := prof.GenerateN(2000, 99)
	if err != nil {
		b.Fatal(err)
	}
	cfg := edc.DefaultSSDConfig()
	cfg.Blocks = 1024
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := edc.Replay(tr, volume,
			edc.WithScheme(edc.SchemeEDC),
			edc.WithSSDConfig(cfg)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(2000*b.N)/elapsed.Seconds(), "requests/s")
}
