package edc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestTracerDoesNotPerturb pins the observability layer's core contract:
// attaching a tracer and time-series sampling changes nothing but the
// Obs snapshot. Every other RunStats field must match an uninstrumented
// replay bit for bit.
func TestTracerDoesNotPerturb(t *testing.T) {
	tr := smallTrace(t, 1500)
	run := func(extra ...Option) *Results {
		opts := append([]Option{WithSSDConfig(smallSSD()), WithCache(1 << 20)}, extra...)
		res, err := Replay(tr, testVolume, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	traced := run(
		WithTracer(TracerFunc(func(*TraceEvent) {})),
		WithTimeSeries(time.Second),
	)
	if traced.Obs == nil {
		t.Fatal("traced run carries no Obs report")
	}
	traced.Obs = nil
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("tracer perturbed the replay:\nbase:   %v\ntraced: %v", base, traced)
	}
}

// TestJSONLTraceValidAndOrdered replays with a JSONL tracer and checks
// every line parses into a TraceEvent and the stream is ordered by
// (virtual time, seq).
func TestJSONLTraceValidAndOrdered(t *testing.T) {
	tr := smallTrace(t, 1200)
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	if _, err := Replay(tr, testVolume, WithSSDConfig(smallSSD()), WithTracer(jt)); err != nil {
		t.Fatal(err)
	}
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var lastT, lastSeq int64 = -1, -1
	for sc.Scan() {
		var e TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d does not parse: %v", n, err)
		}
		if e.TUS < lastT {
			t.Fatalf("line %d: time went backwards (%d after %d)", n, e.TUS, lastT)
		}
		if e.Seq != lastSeq+1 {
			t.Fatalf("line %d: seq %d after %d", n, e.Seq, lastSeq)
		}
		lastT, lastSeq = e.TUS, e.Seq
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events emitted")
	}
}

// TestShardedTracerDeterministic replays a sharded system twice with
// JSONL tracers and requires byte-identical event streams, ordered by
// (virtual time, shard, per-shard seq).
func TestShardedTracerDeterministic(t *testing.T) {
	tr := smallTrace(t, 1200)
	run := func() []byte {
		var buf bytes.Buffer
		jt := NewJSONLTracer(&buf)
		_, err := Replay(tr, testVolume,
			WithSSDConfig(smallSSD()), WithShards(3), WithTracer(jt))
		if err != nil {
			t.Fatal(err)
		}
		if err := jt.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("sharded trace streams differ between identical runs")
	}
	// Verify the deterministic merge order.
	sc := bufio.NewScanner(bytes.NewReader(a))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type key struct {
		t, seq int64
		shard  int
	}
	last := key{t: -1}
	for sc.Scan() {
		var e TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		k := key{t: e.TUS, seq: e.Seq, shard: e.Shard}
		if k.t < last.t ||
			(k.t == last.t && k.shard < last.shard) ||
			(k.t == last.t && k.shard == last.shard && k.seq <= last.seq) {
			t.Fatalf("merge order violated: %+v after %+v", k, last)
		}
		last = k
	}
}

// TestReportJSONRoundTrip checks the machine-readable RunStats form
// (edcbench -json) survives encoding/json unchanged, with the obs
// snapshot attached.
func TestReportJSONRoundTrip(t *testing.T) {
	tr := smallTrace(t, 1000)
	res, err := Replay(tr, testVolume,
		WithSSDConfig(smallSSD()), WithTimeSeries(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Obs == nil || rep.Obs.Series == nil {
		t.Fatal("report missing obs snapshot")
	}
	if rep.WriteThroughRate != res.WriteThroughRate() || rep.OversizeRate != res.OversizeRate() {
		t.Fatal("report rates disagree with RunStats accessors")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("report did not round-trip:\nout:  %+v\nback: %+v", rep, &back)
	}
}
